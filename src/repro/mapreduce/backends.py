"""Pluggable task-execution backends for the MapReduce engine.

The engine schedules a job graph level by level; a backend decides *how*
the tasks of a level actually run:

* :class:`SerialBackend` — in the calling thread, one task after
  another.  The timing-model reference: every other backend must
  produce byte-identical answers and identical simulated reports.
* :class:`ThreadBackend` — a shared :class:`ThreadPoolExecutor`.
  Overlaps whatever releases the GIL; CPU-bound task work stays
  GIL-serialized.
* :class:`ProcessBackend` — a :class:`ProcessPoolExecutor` fanning the
  tasks of a level across worker processes.  Requires picklable task
  specs; the partitioned-store snapshot is shipped once per pool (free
  under the ``fork`` start method) and per-task HDFS traffic is cut to
  the slice each spec declares via ``hdfs_slice()`` (for map chains,
  one node's partitions of the shuffled intermediates).
* :class:`ColumnarBackend` — inline like serial, but the plan task
  specs run as vectorized id-space kernels over dictionary-encoded
  :class:`~repro.columnar.block.ColumnBlock` columns (numpy when
  importable, ``array('q')`` otherwise); see :mod:`repro.columnar`.

Determinism: every backend returns task results **in submission order**
regardless of completion order, and shuffle routing uses the
process-independent :func:`~repro.mapreduce.jobs.stable_hash`, so merged
outputs are reproducible across backends and across runs.

The process backend degrades gracefully: where process pools are
unavailable (sandboxed CI, restricted containers) or a task spec cannot
be pickled (closure-style tasks), it falls back to serial execution and
reports the reason through its ``on_fallback`` callback — the query
service surfaces that as a warning in :class:`~repro.service.stats.ServiceStats`.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
import warnings
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.locks import checked
from repro.mapreduce.jobs import TaskContext, TaskSpec


class BackendUnavailable(RuntimeError):
    """Raised when a backend cannot run and fallback is disabled."""


class _InfraFailure(Exception):
    """Internal marker wrapping an infrastructure-level task failure."""

    def __init__(self, cause: BaseException) -> None:
        super().__init__(str(cause))
        self.cause = cause


@dataclass(frozen=True)
class TaskInvocation:
    """One task to run: a spec plus its per-call arguments.

    Map tasks invoke ``spec.run(ctx)``; reduce tasks invoke
    ``spec.run(ctx, partition, grouped)``.
    """

    spec: TaskSpec
    args: tuple = ()


class ExecutionBackend(ABC):
    """How the tasks of one scheduling level get executed."""

    name: str = "?"

    @abstractmethod
    def run(self, invocations: Sequence[TaskInvocation], ctx: TaskContext) -> list:
        """Run all invocations; return their results in submission order."""

    def prime(self, ctx: TaskContext) -> None:
        """Optional warm-up (e.g. start worker processes) before serving."""

    def close(self) -> None:
        """Release worker pools; the backend must not be used afterwards."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


# -- per-task timing hook (observability) --------------------------------------
#
# The inline backends (serial, columnar) optionally report per-task
# (start, end) perf_counter pairs to a caller that wrapped the run in
# ``task_timing()``.  The hook is a plain thread-local consulted once
# per run (not per task), so the untimed path costs one getattr.

_task_hook = threading.local()


class task_timing:
    """Collect per-task ``(start, end)`` instants from an inline backend.

    ``with task_timing() as spans: backend.run(...)`` — *spans* is a
    list the backend appends to while the context is active.  Pool
    backends (thread/process) ignore the hook: their task wall time is
    not attributable to the calling thread.
    """

    __slots__ = ("spans",)

    def __enter__(self) -> list:
        self.spans: list[tuple[float, float]] = []
        _task_hook.sink = self.spans
        return self.spans

    def __exit__(self, *exc: object) -> None:
        _task_hook.sink = None


def _run_inline(
    invocations: Sequence[TaskInvocation],
    runner: Callable[[TaskInvocation], object],
) -> list:
    sink = getattr(_task_hook, "sink", None)
    if sink is None:
        return [runner(inv) for inv in invocations]
    out = []
    for inv in invocations:
        start = time.perf_counter()
        out.append(runner(inv))
        sink.append((start, time.perf_counter()))
    return out


class SerialBackend(ExecutionBackend):
    """Run every task inline — today's semantics, and the reference."""

    name = "serial"

    def run(self, invocations: Sequence[TaskInvocation], ctx: TaskContext) -> list:
        return _run_inline(invocations, lambda inv: inv.spec.run(ctx, *inv.args))


class ColumnarBackend(ExecutionBackend):
    """Run the plan task specs as vectorized id-space kernels.

    Tasks execute inline like :class:`SerialBackend`, but the three plan
    specs (``ChainMapSpec`` / ``MapOnlySpec`` / ``StarReduceSpec``) are
    evaluated by :mod:`repro.columnar.engine` on dictionary-encoded
    :class:`~repro.columnar.block.ColumnBlock` columns instead of tuple
    lists; any other spec falls back to its own ``run``.  Answers and
    reports are identical to serial by the engine's counter-parity
    contract (the conformance matrix enforces it).

    State (the term dictionary, hash memo, encoded-scan cache) is keyed
    by store snapshot token, so a store mutation naturally starts a
    fresh encoding; a few old snapshots are kept for in-flight queries.
    """

    name = "columnar"

    #: Snapshot states retained (current + a few superseded in-flight).
    MAX_STATES = 4

    def __init__(self) -> None:
        self._lock = checked(threading.Lock(), "ColumnarBackend._lock")
        self._states: dict = {}  # guarded-by: _lock

    def _state_for(self, ctx: TaskContext):
        from repro.columnar.engine import ColumnarState

        token = store_token(ctx.store, ctx.num_nodes)
        with self._lock:
            state = self._states.get(token)
            if state is None:
                while len(self._states) >= self.MAX_STATES:
                    self._states.pop(next(iter(self._states)))
                state = self._states[token] = ColumnarState()
        return state

    def run(self, invocations: Sequence[TaskInvocation], ctx: TaskContext) -> list:
        from repro.columnar.engine import run_invocation

        state = self._state_for(ctx)
        return _run_inline(
            invocations,
            lambda inv: run_invocation(inv.spec, inv.args, ctx, state),
        )

    def prime(self, ctx: TaskContext) -> None:
        self._state_for(ctx)


class ThreadBackend(ExecutionBackend):
    """Fan tasks out on a thread pool (shared context, no pickling)."""

    name = "thread"

    def __init__(self, num_workers: int = 4) -> None:
        if num_workers < 1:
            raise ValueError(f"ThreadBackend needs >= 1 worker, got {num_workers}")
        self.num_workers = num_workers
        self._lock = checked(threading.Lock(), "ThreadBackend._lock")
        self._pool: ThreadPoolExecutor | None = None  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock

    def run(self, invocations: Sequence[TaskInvocation], ctx: TaskContext) -> list:
        if len(invocations) <= 1:
            return [inv.spec.run(ctx, *inv.args) for inv in invocations]
        with self._lock:
            if self._closed:
                raise RuntimeError("backend is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.num_workers,
                    thread_name_prefix="repro-backend",
                )
            pool = self._pool
        futures = [pool.submit(inv.spec.run, ctx, *inv.args) for inv in invocations]
        return [f.result() for f in futures]

    def close(self) -> None:
        with self._lock:
            self._closed = True
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


# -- process backend ----------------------------------------------------------

# Worker-process state, installed once per pool by the initializer: the
# store snapshot is by far the heaviest input, and it is identical for
# every task of a pool's lifetime (the pool is rebuilt when the store
# version changes).
_WORKER_NUM_NODES: int = 0
_WORKER_STORE = None


def _worker_init(num_nodes: int, store) -> None:
    global _WORKER_NUM_NODES, _WORKER_STORE
    _WORKER_NUM_NODES = num_nodes
    _WORKER_STORE = store


def _worker_run(spec: TaskSpec, args: tuple, hdfs_files: dict):
    from repro.mapreduce.hdfs import HDFS

    ctx = TaskContext(
        num_nodes=_WORKER_NUM_NODES,
        store=_WORKER_STORE,
        hdfs=HDFS(num_nodes=_WORKER_NUM_NODES, files=hdfs_files),
    )
    return spec.run(ctx, *args)


#: Errors a *pool creation* attempt can raise when process pools are
#: simply unavailable on this machine (sandboxed CI, missing semaphores,
#: fork denied).
_POOL_CREATION_ERRORS = (
    OSError,
    PermissionError,
    NotImplementedError,
    ImportError,
    ValueError,
)


def _is_infra_error(exc: BaseException) -> bool:
    """Did process execution itself fail, as opposed to the task?

    Worker death and pickling failures are infrastructure: the same task
    would succeed in-process.  Pickling errors surface from the
    submission machinery as PicklingError, or as TypeError/AttributeError
    mentioning pickling ("cannot pickle ...", "Can't pickle ...") — a
    task's own TypeError/OSError must NOT match, or a genuine bug would
    silently demote the backend and be re-run (and possibly masked)
    serially.
    """
    if isinstance(exc, (BrokenProcessPool, pickle.PicklingError)):
        return True
    if isinstance(exc, (TypeError, AttributeError)):
        return "pickle" in str(exc).lower()
    return False


def store_token(store, num_nodes: int = 0) -> object:
    """The identity token of a context's store snapshot.

    Worker pools — and the RPC shard servers, which hold a resident
    snapshot the same way — key their warm state on this token: a
    mutation bumps the store version, the token changes, and whoever
    holds state derived from the old snapshot knows to rebuild.
    """
    if store is None:
        return ("no-store", num_nodes)
    return store.token


def default_process_workers() -> int:
    """Worker count matched to the CPUs this process may actually use."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity masks
        cpus = os.cpu_count() or 1
    return max(1, cpus)


class ProcessBackend(ExecutionBackend):
    """Fan tasks of a level out across a process pool.

    The pool is created lazily (or via :meth:`prime`) and keyed to the
    store snapshot's identity token: a mutation bumps the store version,
    and the next ``run`` transparently rebuilds the pool so workers never
    serve from a stale store.

    With ``fallback=True`` (the default) any infrastructure failure —
    pool creation denied, worker death, unpicklable task spec — demotes
    the backend to serial execution for good, reporting the reason once
    through ``on_fallback``.  With ``fallback=False`` the same failures
    raise :class:`BackendUnavailable`.
    """

    name = "process"

    def __init__(
        self,
        num_workers: int | None = None,
        *,
        fallback: bool = True,
        on_fallback: Callable[[str], None] | None = None,
        mp_context: str | None = None,
    ) -> None:
        if num_workers is None:
            num_workers = default_process_workers()
        if num_workers < 1:
            raise ValueError(f"ProcessBackend needs >= 1 worker, got {num_workers}")
        self.num_workers = num_workers
        self.fallback = fallback
        self.on_fallback = on_fallback
        self._mp_context = mp_context
        #: guards pool creation/swap/demotion (run() may be called from
        #: many service threads at once; submissions themselves are
        #: thread-safe on the pool)
        self._lock = checked(threading.Lock(), "ProcessBackend._lock")
        self._pool: ProcessPoolExecutor | None = None  # guarded-by: _lock
        self._pool_token: object = None  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        # Written only under _lock; read lock-free on the hot path as a
        # monotonic None -> SerialBackend latch (a stale None merely
        # retries the pool once more before demoting again).
        self._serial: SerialBackend | None = None

    # -- pool management ---------------------------------------------------

    def _context(self):
        if self._mp_context is not None:
            return multiprocessing.get_context(self._mp_context)
        # fork is dramatically cheaper where available: workers inherit
        # the store snapshot instead of unpickling it.
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else None)

    def _store_token(self, ctx: TaskContext) -> object:
        return store_token(ctx.store, ctx.num_nodes)

    @property
    def pool_token(self) -> object:
        """Snapshot token the live worker pool was built against (None
        when no pool is up) — observability for the mutation protocol:
        after a re-prime with a changed snapshot, this token changes."""
        with self._lock:
            return self._pool_token if self._pool is not None else None

    def _create_pool(self, ctx: TaskContext) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.num_workers,
            mp_context=self._context(),
            initializer=_worker_init,
            initargs=(ctx.num_nodes, ctx.store),
        )

    def _ensure_pool(self, ctx: TaskContext) -> ProcessPoolExecutor:
        token = self._store_token(ctx)
        with self._lock:
            if self._closed:
                raise RuntimeError("backend is closed")
            if self._pool is not None and token != self._pool_token:
                # The store changed (mutation bumped its version): the
                # workers' inherited snapshot is stale, rebuild the pool.
                self._pool.shutdown(wait=True)
                self._pool = None
            if self._pool is None:
                self._pool = self._create_pool(ctx)
                self._pool_token = token
            return self._pool

    def _demote(self, reason: str) -> SerialBackend:
        if not self.fallback:
            raise BackendUnavailable(reason)
        with self._lock:
            if self._serial is None:
                self._serial = SerialBackend()
                if self.on_fallback is not None:
                    self.on_fallback(reason)
                else:
                    # Never demote silently: a bare executor without a
                    # stats hook still gets a visible signal.
                    warnings.warn(
                        f"ProcessBackend demoted to serial: {reason}",
                        RuntimeWarning,
                        stacklevel=3,
                    )
            if self._pool is not None:
                try:
                    self._pool.shutdown(wait=False)
                except Exception:
                    pass
                self._pool = None
            return self._serial

    # -- ExecutionBackend --------------------------------------------------

    def prime(self, ctx: TaskContext) -> None:
        """Start the worker pool up-front (before any service threads
        exist, which keeps fork-based pools out of multithreaded forks)."""
        if self._serial is not None:
            return
        try:
            self._ensure_pool(ctx)
        except _POOL_CREATION_ERRORS as exc:
            self._demote(f"process pool unavailable: {exc!r}")

    def run(self, invocations: Sequence[TaskInvocation], ctx: TaskContext) -> list:
        if self._serial is not None:
            return self._serial.run(invocations, ctx)
        if len(invocations) <= 1:
            # Not worth a round-trip; also serves closure specs untouched.
            return [inv.spec.run(ctx, *inv.args) for inv in invocations]
        try:
            pool = self._ensure_pool(ctx)
        except _POOL_CREATION_ERRORS as exc:
            serial = self._demote(f"process pool unavailable: {exc!r}")
            return serial.run(invocations, ctx)
        try:
            hdfs = ctx.hdfs
            futures = [
                pool.submit(
                    _worker_run,
                    inv.spec,
                    inv.args,
                    inv.spec.hdfs_slice(hdfs) if hdfs is not None else {},
                )
                for inv in invocations
            ]
            results = []
            for future in futures:
                try:
                    results.append(future.result())
                except BaseException as exc:
                    if _is_infra_error(exc):
                        raise _InfraFailure(exc) from exc
                    raise  # a genuine task error: surface it unchanged
            return results
        except _InfraFailure as wrapped:
            exc = wrapped.cause
            serial = self._demote(
                f"process execution failed ({type(exc).__name__}: {exc}); "
                "falling back to serial"
            )
            # Task specs are pure (all effects flow through their returned
            # rows/metrics), so re-running the whole level is safe.
            return serial.run(invocations, ctx)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


def split_workers(total: int | None, parts: int, backend: str) -> int | None:
    """Workers per part when *total* workers fan out across *parts* pools.

    The sharded executor gives every shard its own backend instance (a
    process pool per shard, keyed to that shard's snapshot token), so a
    machine-wide worker budget must be divided across shards or each
    shard would claim every CPU.  ``None`` budgets resolve to the
    backend's own default first (CPUs for process, 4 for thread); serial
    backends have no workers and pass through.
    """
    if parts < 1:
        raise ValueError(f"cannot split workers across {parts} parts")
    if backend in ("serial", "columnar"):
        return None
    if total is None:
        total = default_process_workers() if backend == "process" else 4
    return max(1, total // parts)


#: Default number of concurrently executing requests per RPC shard
#: server — the worker-side dispatch pool size (ServiceConfig.rpc_pipeline).
#: ``0`` disables multiplexing: the driver serialises the connection.
DEFAULT_RPC_PIPELINE = 4


def pipeline_workers(
    backend: str, num_workers: int | None, pipeline: int
) -> int | None:
    """Size a shard server's execution backend for a pipelined request
    stream.

    A worker dispatching up to *pipeline* levels concurrently shares one
    backend across them.  A thread pool smaller than the pipeline would
    serialise the very concurrency the dispatch pool exists to provide,
    so it is widened to at least *pipeline* threads; serial and columnar
    backends have no workers, and a process pool's size is a CPU budget
    that concurrent levels should share rather than multiply.
    """
    if backend == "thread":
        base = num_workers if num_workers is not None else 4
        return max(1, base, pipeline)
    return num_workers


#: Names accepted by :func:`make_backend` (and ServiceConfig.backend).
BACKEND_NAMES = ("serial", "thread", "process", "columnar")


def make_backend(
    backend: "str | ExecutionBackend | None",
    num_workers: int | None = None,
    on_fallback: Callable[[str], None] | None = None,
) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through).

    ``num_workers`` applies to thread/process backends; ``None`` picks
    4 threads or one process per available CPU.
    """
    if backend is None:
        return SerialBackend()
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend == "serial":
        return SerialBackend()
    if backend == "thread":
        return ThreadBackend(num_workers if num_workers is not None else 4)
    if backend == "process":
        return ProcessBackend(num_workers, on_fallback=on_fallback)
    if backend == "columnar":
        return ColumnarBackend()
    raise ValueError(
        f"unknown execution backend {backend!r}; expected one of {BACKEND_NAMES}"
    )
