"""A minimal simulated HDFS namespace for intermediate results.

Job outputs are distributed relations: an attribute schema plus one row
partition per cluster node (reduce task outputs stay on the reducer's
node, as in Hadoop).  Later jobs' map shufflers read these partitions
node-locally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

Row = tuple


@dataclass
class DistributedRelation:
    """A relation stored partitioned across cluster nodes."""

    attrs: tuple[str, ...]
    partitions: list[list[Row]]

    @classmethod
    def empty(cls, attrs: tuple[str, ...], num_nodes: int) -> "DistributedRelation":
        return cls(attrs=attrs, partitions=[[] for _ in range(num_nodes)])

    def __len__(self) -> int:
        return sum(len(p) for p in self.partitions)

    def all_rows(self) -> list[Row]:
        out: list[Row] = []
        for part in self.partitions:
            out.extend(part)
        return out


@dataclass
class HDFS:
    """A flat name -> distributed relation namespace."""

    num_nodes: int
    files: dict[str, DistributedRelation] = field(default_factory=dict)

    def write(self, name: str, relation: DistributedRelation) -> None:
        if name in self.files:
            raise FileExistsError(f"HDFS file already exists: {name}")
        self.files[name] = relation

    def read(self, name: str) -> DistributedRelation:
        try:
            return self.files[name]
        except KeyError:
            raise FileNotFoundError(f"no such HDFS file: {name}") from None

    def exists(self, name: str) -> bool:
        return name in self.files

    def delete(self, name: str) -> None:
        self.files.pop(name, None)

    def write_partitioned(
        self,
        name: str,
        attrs: tuple[str, ...],
        rows_per_node: Iterable[tuple[int, list[Row]]],
    ) -> DistributedRelation:
        """Create a file from (node, rows) pairs."""
        relation = DistributedRelation.empty(attrs, self.num_nodes)
        for node, rows in rows_per_node:
            relation.partitions[node].extend(rows)
        self.write(name, relation)
        return relation
