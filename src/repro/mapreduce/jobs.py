"""The simulated MapReduce job model.

A :class:`MapReduceJob` bundles map tasks (one per node per input), an
optional reduce stage and dependency edges.  Tasks are plain callables
so that any engine (CSQ's physical executor, the comparator systems'
simulators) can express its work in the same currency; the engine only
needs each task's output rows and :class:`TaskMetrics`.

Map tasks emit either *shuffle output* — (partition, tag, row) triples
destined for reducers — or *direct output* rows (map-only jobs).
Reducers receive, for their partition, the rows grouped by tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.mapreduce.counters import TaskMetrics

Row = tuple

#: Shuffle emission: (reduce partition, input tag, row).
ShuffleEmit = tuple[int, int, Row]

#: A map task returns shuffle emissions, direct output rows, and metrics.
MapResult = tuple[list[ShuffleEmit], list[Row], TaskMetrics]

#: A reducer consumes {tag: rows} for one partition and returns rows+metrics.
ReduceFn = Callable[[int, dict[int, list[Row]]], tuple[list[Row], TaskMetrics]]


@dataclass
class MapTask:
    """One map task, pinned to a cluster node."""

    node: int
    run: Callable[[], MapResult]
    label: str = ""


@dataclass
class MapReduceJob:
    """One simulated MapReduce job."""

    name: str
    map_tasks: list[MapTask]
    num_reducers: int = 0  # 0 -> map-only job
    reducer: ReduceFn | None = None
    #: names of jobs whose output this job reads (scheduling DAG)
    depends_on: tuple[str, ...] = ()
    #: callback invoked with (per-node output rows) once the job finishes;
    #: used by executors to register results in simulated HDFS.
    on_complete: Callable[[list[list[Row]]], None] | None = None

    def __post_init__(self) -> None:
        if self.num_reducers > 0 and self.reducer is None:
            raise ValueError(f"job {self.name} has reducers but no reduce fn")
        if self.num_reducers == 0 and self.reducer is not None:
            raise ValueError(f"job {self.name} has a reduce fn but 0 reducers")

    @property
    def map_only(self) -> bool:
        return self.num_reducers == 0


def stable_hash(values: tuple) -> int:
    """Deterministic hash for shuffle partitioning (Python's builtin
    string hash is randomized per process)."""
    h = 17
    for value in values:
        text = value if isinstance(value, str) else repr(value)
        for ch in text:
            h = (h * 131 + ord(ch)) & 0x7FFFFFFF
        h = (h * 257 + 11) & 0x7FFFFFFF
    return h


@dataclass
class JobGraph:
    """A DAG of jobs, with level-wise scheduling order.

    Jobs with no unfinished dependencies run concurrently (Hadoop runs
    independent jobs in parallel); levels are the simulator's barriers.
    """

    jobs: list[MapReduceJob] = field(default_factory=list)

    def add(self, job: MapReduceJob) -> MapReduceJob:
        if any(j.name == job.name for j in self.jobs):
            raise ValueError(f"duplicate job name: {job.name}")
        self.jobs.append(job)
        return job

    def levels(self) -> list[list[MapReduceJob]]:
        """Topological levels: a job sits one level after its last dependency."""
        by_name = {j.name: j for j in self.jobs}
        level_of: dict[str, int] = {}

        def level(job: MapReduceJob, seen: frozenset[str]) -> int:
            if job.name in level_of:
                return level_of[job.name]
            if job.name in seen:
                raise ValueError(f"job dependency cycle through {job.name}")
            deps = []
            for dep in job.depends_on:
                if dep not in by_name:
                    raise ValueError(f"job {job.name} depends on unknown {dep}")
                deps.append(level(by_name[dep], seen | {job.name}))
            value = (max(deps) + 1) if deps else 0
            level_of[job.name] = value
            return value

        for job in self.jobs:
            level(job, frozenset())
        depth = max(level_of.values(), default=-1) + 1
        out: list[list[MapReduceJob]] = [[] for _ in range(depth)]
        for job in self.jobs:
            out[level_of[job.name]].append(job)
        return out
