"""The simulated MapReduce job model.

A :class:`MapReduceJob` bundles map tasks (one per node per input), an
optional reduce stage and dependency edges.  Tasks carry *declarative
specs* — picklable dataclasses whose ``run`` method evaluates the task
against a :class:`TaskContext` — so any execution backend (serial,
thread pool, process pool) can ship a task to a worker and get back its
output rows plus :class:`TaskMetrics`.  Behaviour lives in the spec
class, state in its fields; nothing in a spec may close over live
engine objects.

Closure-style tasks (the historical API, still used by ad-hoc
simulations and tests) remain available through ``MapTask(run=...)`` /
``MapReduceJob(reducer=...)``; they are wrapped into
:class:`FnMapSpec` / :class:`FnReduceSpec`, which serial and thread
backends execute in place.  A process backend cannot pickle closures:
hitting one demotes that backend to serial for good (a one-time,
backend-wide fallback with a recorded warning), so keep closure jobs
off backends meant to serve spec-based work in parallel.

Map tasks emit either *shuffle output* — (partition, tag, row) triples
destined for reducers — or *direct output* rows (map-only jobs).
Reducers receive, for their partition, the rows grouped by tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.mapreduce.counters import TaskMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.mapreduce.hdfs import HDFS
    from repro.partitioning.triple_partitioner import StoreSnapshot

Row = tuple

#: Shuffle emission: (reduce partition, input tag, row).
ShuffleEmit = tuple[int, int, Row]

#: A map task returns shuffle emissions, direct output rows, and metrics.
MapResult = tuple[list[ShuffleEmit], list[Row], TaskMetrics]

#: A reducer consumes {tag: rows} for one partition and returns rows+metrics.
ReduceFn = Callable[[int, dict[int, list[Row]]], tuple[list[Row], TaskMetrics]]


@dataclass
class TaskContext:
    """Everything a worker needs to evaluate task specs.

    The context is the only channel through which a spec reaches shared
    state: the partitioned store (as a read-only snapshot) and the
    intermediate-result namespace.  A process backend rebuilds an
    equivalent context inside each worker (store shipped once per pool,
    HDFS inputs sliced per task), so specs must not assume the context
    object is shared with the driver.
    """

    num_nodes: int
    store: "StoreSnapshot | None" = None
    hdfs: "HDFS | None" = None


class TaskSpec:
    """Base class for declarative task specs.

    Concrete specs are module-level dataclasses with plain-data fields,
    so ``pickle`` round-trips them by reference to their class — the
    contract that lets a :class:`~repro.mapreduce.backends.ProcessBackend`
    ship work across process boundaries.
    """

    def hdfs_inputs(self) -> tuple[str, ...]:
        """Names of the HDFS files this task reads (shipped to workers)."""
        return ()

    def hdfs_slice(self, hdfs: "HDFS") -> dict:
        """The HDFS content to ship for a remote run of this task.

        Defaults to the whole file for every name in :meth:`hdfs_inputs`;
        specs that read only part of a file (e.g. one node's partitions)
        should override this to cut per-task IPC.
        """
        return {name: hdfs.read(name) for name in self.hdfs_inputs()}

    def run(self, ctx: TaskContext, *args):
        raise NotImplementedError


class MapTaskSpec(TaskSpec):
    """A map task spec: ``run(ctx)`` returns a :data:`MapResult`."""


class ReduceTaskSpec(TaskSpec):
    """A reduce task spec: ``run(ctx, partition, grouped)`` returns
    ``(rows, metrics)`` for one reduce partition."""


@dataclass(frozen=True)
class FnMapSpec(MapTaskSpec):
    """Adapter for closure-style map tasks (not process-safe)."""

    fn: Callable[[], MapResult]  # lint: disable=SPEC001 — closure adapter for in-process backends only, never pickled

    def run(self, ctx: TaskContext, *args) -> MapResult:
        return self.fn()


@dataclass(frozen=True)
class FnReduceSpec(ReduceTaskSpec):
    """Adapter for closure-style reducers (not process-safe)."""

    fn: ReduceFn  # lint: disable=SPEC001 — closure adapter for in-process backends only, never pickled

    def run(self, ctx: TaskContext, partition: int, grouped: dict) -> tuple:
        return self.fn(partition, grouped)


@dataclass
class MapTask:
    """One map task, pinned to a cluster node.

    Construct with either a declarative ``spec`` (preferred; required
    for process execution) or a legacy ``run`` closure, which is wrapped
    into a :class:`FnMapSpec`.
    """

    node: int
    spec: MapTaskSpec | None = None
    run: Callable[[], MapResult] | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if (
            self.spec is not None
            and self.run is None
            and not hasattr(self.spec, "run")
            and callable(self.spec)
        ):
            # Legacy positional form MapTask(node, fn): the closure lands
            # in the spec slot; treat it as run=.
            self.spec, self.run = None, self.spec
        if (self.spec is None) == (self.run is None):
            raise ValueError("a MapTask needs exactly one of spec= or run=")
        if self.spec is None:
            self.spec = FnMapSpec(self.run)


@dataclass
class MapReduceJob:
    """One simulated MapReduce job."""

    name: str
    map_tasks: list[MapTask]
    num_reducers: int = 0  # 0 -> map-only job
    reducer: ReduceFn | None = None
    #: declarative reduce spec (preferred over the ``reducer`` closure)
    reduce_spec: ReduceTaskSpec | None = None
    #: names of jobs whose output this job reads (scheduling DAG)
    depends_on: tuple[str, ...] = ()
    #: callback invoked with (per-node output rows) once the job finishes;
    #: used by executors to register results in simulated HDFS.  Always
    #: runs in the driver process, so it may close over live state.
    on_complete: Callable[[list[list[Row]]], None] | None = None

    def __post_init__(self) -> None:
        if self.reducer is not None and self.reduce_spec is not None:
            raise ValueError(f"job {self.name} has both reducer and reduce_spec")
        if self.reducer is not None:
            self.reduce_spec = FnReduceSpec(self.reducer)
        if self.num_reducers > 0 and self.reduce_spec is None:
            raise ValueError(f"job {self.name} has reducers but no reduce fn")
        if self.num_reducers == 0 and self.reduce_spec is not None:
            raise ValueError(f"job {self.name} has a reduce fn but 0 reducers")

    @property
    def map_only(self) -> bool:
        return self.num_reducers == 0


def stable_hash(values: tuple) -> int:
    """Deterministic hash for shuffle partitioning.

    Python's builtin string hash is randomized per process, which would
    scatter a key to different reducers in different workers; this
    polynomial hash is pure arithmetic over the text, so every backend —
    and every worker process — routes a key identically.
    """
    h = 17
    for value in values:
        text = value if isinstance(value, str) else repr(value)
        for ch in text:
            h = (h * 131 + ord(ch)) & 0x7FFFFFFF
        h = (h * 257 + 11) & 0x7FFFFFFF
    return h


@dataclass
class JobGraph:
    """A DAG of jobs, with level-wise scheduling order.

    Jobs with no unfinished dependencies run concurrently (Hadoop runs
    independent jobs in parallel); levels are the simulator's barriers.
    """

    jobs: list[MapReduceJob] = field(default_factory=list)

    def add(self, job: MapReduceJob) -> MapReduceJob:
        if any(j.name == job.name for j in self.jobs):
            raise ValueError(f"duplicate job name: {job.name}")
        self.jobs.append(job)
        return job

    def levels(self) -> list[list[MapReduceJob]]:
        """Topological levels: a job sits one level after its last dependency."""
        by_name = {j.name: j for j in self.jobs}
        level_of: dict[str, int] = {}

        def level(job: MapReduceJob, seen: frozenset[str]) -> int:
            if job.name in level_of:
                return level_of[job.name]
            if job.name in seen:
                raise ValueError(f"job dependency cycle through {job.name}")
            deps = []
            for dep in job.depends_on:
                if dep not in by_name:
                    raise ValueError(f"job {job.name} depends on unknown {dep}")
                deps.append(level(by_name[dep], seen | {job.name}))
            value = (max(deps) + 1) if deps else 0
            level_of[job.name] = value
            return value

        for job in self.jobs:
            level(job, frozenset())
        depth = max(level_of.values(), default=-1) + 1
        out: list[list[MapReduceJob]] = [[] for _ in range(depth)]
        for job in self.jobs:
            out[level_of[job.name]].append(job)
        return out
