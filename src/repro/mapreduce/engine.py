"""The simulated MapReduce execution engine.

Executes a :class:`JobGraph` level by level (independent jobs run
concurrently; dependent jobs wait), really running every task callable
on real tuples, and charges simulated time from the task counters and
the §5.4 unit costs:

* a job's map phase time is the maximum over nodes of the node's map
  work (nodes work in parallel, tasks on one node serially);
* the reduce phase likewise is the maximum over reducers;
* each job pays a fixed initialization overhead (``job_overhead``);
* the response time of a level is its slowest job; levels are barriers.

Total work (the quantity the cost model of §5.4 estimates) is reported
alongside the response time.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.cost.params import DEFAULT_PARAMS, CostParams
from repro.mapreduce.counters import ExecutionReport, JobMetrics, TaskMetrics
from repro.mapreduce.jobs import JobGraph, MapReduceJob, Row


@dataclass
class ClusterConfig:
    """The simulated cluster (the paper used 7 nodes)."""

    num_nodes: int = 7

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("a cluster needs at least one node")


class MapReduceEngine:
    """Runs job graphs on a simulated cluster."""

    def __init__(
        self,
        cluster: ClusterConfig | None = None,
        params: CostParams = DEFAULT_PARAMS,
    ) -> None:
        self.cluster = cluster or ClusterConfig()
        self.params = params

    def execute(self, graph: JobGraph) -> ExecutionReport:
        """Run all jobs; return the execution report.

        Job ``on_complete`` callbacks receive the per-node output rows
        (reducer outputs live on the reducer's node; map-only outputs on
        the mapper's node), letting callers persist intermediates.
        """
        report = ExecutionReport()
        for level in graph.levels():
            level_time = 0.0
            names: list[str] = []
            for job in level:
                metrics = self._run_job(job)
                report.jobs.append(metrics)
                report.total_work += metrics.total_work
                level_time = max(level_time, metrics.time)
                names.append(job.name)
            report.levels.append(names)
            report.response_time += level_time
        return report

    # -- internals -----------------------------------------------------------

    def _run_job(self, job: MapReduceJob) -> JobMetrics:
        params = self.params
        metrics = JobMetrics(
            name=job.name, overhead=params.job_overhead, map_only=job.map_only
        )

        # Map phase: run tasks, aggregate per-node work.
        node_work: dict[int, float] = defaultdict(float)
        shuffle: dict[int, dict[int, list[Row]]] = defaultdict(lambda: defaultdict(list))
        outputs_per_node: list[list[Row]] = [
            [] for _ in range(self.cluster.num_nodes)
        ]
        for task in job.map_tasks:
            emits, direct, task_metrics = task.run()
            node_work[task.node] += task_metrics.time(params)
            metrics.total_work += task_metrics.time(params)
            for partition, tag, row in emits:
                shuffle[partition % max(job.num_reducers, 1)][tag].append(row)
            outputs_per_node[task.node % self.cluster.num_nodes].extend(direct)
        metrics.map_time = max(node_work.values(), default=0.0)

        # Reduce phase.
        if not job.map_only:
            assert job.reducer is not None
            reducer_work: dict[int, float] = defaultdict(float)
            for partition in range(job.num_reducers):
                grouped = {
                    tag: rows for tag, rows in shuffle.get(partition, {}).items()
                }
                out_rows, task_metrics = job.reducer(partition, grouped)
                node = partition % self.cluster.num_nodes
                reducer_work[node] += task_metrics.time(params)
                metrics.total_work += task_metrics.time(params)
                metrics.tuples_shuffled += task_metrics.tuples_shuffled
                outputs_per_node[node].extend(out_rows)
            metrics.reduce_time = max(reducer_work.values(), default=0.0)

        metrics.total_work += params.job_overhead
        metrics.output_tuples = sum(len(rows) for rows in outputs_per_node)
        if job.on_complete is not None:
            job.on_complete(outputs_per_node)
        return metrics


def run_jobs(
    jobs: list[MapReduceJob],
    cluster: ClusterConfig | None = None,
    params: CostParams = DEFAULT_PARAMS,
) -> ExecutionReport:
    """Convenience: build a graph from *jobs* and execute it."""
    graph = JobGraph()
    for job in jobs:
        graph.add(job)
    return MapReduceEngine(cluster, params).execute(graph)
