"""The simulated MapReduce execution engine.

Executes a :class:`JobGraph` level by level (independent jobs run
concurrently; dependent jobs wait), really running every task spec on
real tuples, and charges simulated time from the task counters and the
§5.4 unit costs:

* a job's map phase time is the maximum over nodes of the node's map
  work (nodes work in parallel, tasks on one node serially);
* the reduce phase likewise is the maximum over reducers;
* each job pays a fixed initialization overhead (``job_overhead``);
* the response time of a level is its slowest job; levels are barriers.

*How* the tasks of a level physically run is delegated to an
:class:`~repro.mapreduce.backends.ExecutionBackend`: all map tasks of a
level fan out together, then all reduce tasks, with results consumed in
submission order so that shuffle grouping — and therefore answers and
reports — is identical whichever backend ran the tasks.  The simulated
timing model depends only on the returned counters, never on wall-clock,
so a report is backend-invariant by construction (the backend name is
recorded on it for observability).

Total work (the quantity the cost model of §5.4 estimates) is reported
alongside the response time.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.cost.params import DEFAULT_PARAMS, CostParams
from repro.mapreduce.backends import (
    ExecutionBackend,
    SerialBackend,
    TaskInvocation,
)
from repro.mapreduce.counters import ExecutionReport, JobMetrics, TaskMetrics
from repro.mapreduce.jobs import JobGraph, MapReduceJob, Row, TaskContext
from repro.obs.trace import span


@dataclass
class ClusterConfig:
    """The simulated cluster (the paper used 7 nodes)."""

    num_nodes: int = 7

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("a cluster needs at least one node")


class _JobState:
    """Per-job accumulation while its level executes."""

    def __init__(self, job: MapReduceJob, num_nodes: int, overhead: float) -> None:
        self.job = job
        self.metrics = JobMetrics(
            name=job.name, overhead=overhead, map_only=job.map_only
        )
        self.node_work: dict[int, float] = defaultdict(float)
        self.reduce_work: dict[int, float] = defaultdict(float)
        self.shuffle: dict[int, dict[int, list[Row]]] = defaultdict(
            lambda: defaultdict(list)
        )
        self.outputs_per_node: list[list[Row]] = [[] for _ in range(num_nodes)]


class MapReduceEngine:
    """Runs job graphs on a simulated cluster via an execution backend."""

    def __init__(
        self,
        cluster: ClusterConfig | None = None,
        params: CostParams = DEFAULT_PARAMS,
        backend: ExecutionBackend | None = None,
    ) -> None:
        self.cluster = cluster or ClusterConfig()
        self.params = params
        self.backend = backend or SerialBackend()

    def execute(self, graph: JobGraph, ctx: TaskContext | None = None) -> ExecutionReport:
        """Run all jobs; return the execution report.

        ``ctx`` carries the worker-visible state (store snapshot, HDFS
        namespace); omitting it suits self-contained closure-style jobs.
        Job ``on_complete`` callbacks receive the per-node output rows
        (reducer outputs live on the reducer's node; map-only outputs on
        the mapper's node), letting callers persist intermediates; they
        always run in the driver, after the level's tasks returned.
        """
        if ctx is None:
            ctx = TaskContext(num_nodes=self.cluster.num_nodes)
        report = ExecutionReport(backend=self.backend.name)
        for level_index, level in enumerate(graph.levels()):
            with span("level", index=level_index, jobs=len(level)):
                level_time = self._run_level(level, ctx, report)
            report.levels.append([job.name for job in level])
            report.response_time += level_time
        return report

    # -- internals -----------------------------------------------------------

    def _run_level(
        self, level: list[MapReduceJob], ctx: TaskContext, report: ExecutionReport
    ) -> float:
        params = self.params
        num_nodes = self.cluster.num_nodes
        states = [
            _JobState(job, num_nodes, params.job_overhead) for job in level
        ]

        # Map phase: fan every map task of the level out on the backend,
        # then consume results in submission order (determinism: shuffle
        # lists are appended in task order, not completion order).
        invocations = [
            TaskInvocation(task.spec)
            for state in states
            for task in state.job.map_tasks
        ]
        with span("map_phase", tasks=len(invocations)):
            results = iter(list(self.backend.run(invocations, ctx)))
        for state in states:
            job, metrics = state.job, state.metrics
            for task in job.map_tasks:
                emits, direct, task_metrics = next(results)
                state.node_work[task.node] += task_metrics.time(params)
                metrics.total_work += task_metrics.time(params)
                for partition, tag, row in emits:
                    state.shuffle[partition % max(job.num_reducers, 1)][tag].append(row)
                state.outputs_per_node[task.node % num_nodes].extend(direct)
            metrics.map_time = max(state.node_work.values(), default=0.0)

        # Reduce phase: likewise, across all jobs of the level.
        reduce_invocations: list[TaskInvocation] = []
        owners: list[tuple[_JobState, int]] = []
        for state in states:
            job = state.job
            if job.map_only:
                continue
            assert job.reduce_spec is not None
            for partition in range(job.num_reducers):
                grouped = {
                    tag: rows for tag, rows in state.shuffle.get(partition, {}).items()
                }
                reduce_invocations.append(
                    TaskInvocation(job.reduce_spec, (partition, grouped))
                )
                owners.append((state, partition))
        if reduce_invocations:
            with span("reduce_phase", tasks=len(reduce_invocations)):
                reduce_results = self.backend.run(reduce_invocations, ctx)
            for (state, partition), (out_rows, task_metrics) in zip(
                owners, reduce_results
            ):
                metrics = state.metrics
                node = partition % num_nodes
                state.reduce_work[node] += task_metrics.time(params)
                metrics.total_work += task_metrics.time(params)
                metrics.tuples_shuffled += task_metrics.tuples_shuffled
                state.outputs_per_node[node].extend(out_rows)
            for state in states:
                if not state.job.map_only:
                    state.metrics.reduce_time = max(
                        state.reduce_work.values(), default=0.0
                    )

        # Close out the level: charge overheads, publish outputs.
        level_time = 0.0
        for state in states:
            metrics = state.metrics
            metrics.total_work += params.job_overhead
            metrics.output_tuples = sum(
                len(rows) for rows in state.outputs_per_node
            )
            if state.job.on_complete is not None:
                state.job.on_complete(state.outputs_per_node)
            report.jobs.append(metrics)
            report.total_work += metrics.total_work
            level_time = max(level_time, metrics.time)
        return level_time


def run_jobs(
    jobs: list[MapReduceJob],
    cluster: ClusterConfig | None = None,
    params: CostParams = DEFAULT_PARAMS,
    backend: ExecutionBackend | None = None,
    ctx: TaskContext | None = None,
) -> ExecutionReport:
    """Convenience: build a graph from *jobs* and execute it."""
    graph = JobGraph()
    for job in jobs:
        graph.add(job)
    return MapReduceEngine(cluster, params, backend).execute(graph, ctx)
