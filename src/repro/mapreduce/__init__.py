"""repro.mapreduce subpackage."""
