"""Work counters for simulated MapReduce tasks and jobs.

Every simulated task counts the tuples it reads, writes, shuffles,
checks and joins; the §5.4 unit costs turn counters into (simulated)
time.  The same counters double as the framework's "total work", which
is what the paper's cost model estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cost.params import CostParams


@dataclass
class TaskMetrics:
    """Counters for one map or reduce task."""

    tuples_read: int = 0
    tuples_written: int = 0
    tuples_shuffled: int = 0
    checks: int = 0
    join_tuples: int = 0

    def time(self, params: CostParams) -> float:
        """Simulated execution time of the task under the unit costs."""
        return (
            self.tuples_read * params.c_read
            + self.tuples_written * params.c_write
            + self.tuples_shuffled * params.c_shuffle
            + self.checks * params.c_check
            + self.join_tuples * params.c_join
        )

    def merge(self, other: "TaskMetrics") -> None:
        self.tuples_read += other.tuples_read
        self.tuples_written += other.tuples_written
        self.tuples_shuffled += other.tuples_shuffled
        self.checks += other.checks
        self.join_tuples += other.join_tuples


@dataclass
class JobMetrics:
    """Aggregated metrics and timing for one MapReduce job."""

    name: str
    map_time: float = 0.0
    reduce_time: float = 0.0
    overhead: float = 0.0
    total_work: float = 0.0
    map_only: bool = True
    tuples_shuffled: int = 0
    output_tuples: int = 0

    @property
    def time(self) -> float:
        """Response time of the job: map and reduce phases are barriers."""
        return self.overhead + self.map_time + self.reduce_time


@dataclass
class ExecutionReport:
    """End-to-end execution statistics of a job DAG."""

    jobs: list[JobMetrics] = field(default_factory=list)
    levels: list[list[str]] = field(default_factory=list)
    response_time: float = 0.0
    total_work: float = 0.0

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    @property
    def num_map_only_jobs(self) -> int:
        return sum(1 for j in self.jobs if j.map_only)

    def job_signature(self) -> str:
        """The paper's Fig. 20/21 job annotation: 'M' for a map-only
        execution, otherwise the number of jobs."""
        if all(j.map_only for j in self.jobs):
            return "M"
        return str(self.num_jobs)
