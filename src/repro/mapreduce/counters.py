"""Work counters for simulated MapReduce tasks and jobs.

Every simulated task counts the tuples it reads, writes, shuffles,
checks and joins; the §5.4 unit costs turn counters into (simulated)
time.  The same counters double as the framework's "total work", which
is what the paper's cost model estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cost.params import CostParams


@dataclass
class TaskMetrics:
    """Counters for one map or reduce task."""

    tuples_read: int = 0
    tuples_written: int = 0
    tuples_shuffled: int = 0
    checks: int = 0
    join_tuples: int = 0

    def time(self, params: CostParams) -> float:
        """Simulated execution time of the task under the unit costs."""
        return (
            self.tuples_read * params.c_read
            + self.tuples_written * params.c_write
            + self.tuples_shuffled * params.c_shuffle
            + self.checks * params.c_check
            + self.join_tuples * params.c_join
        )

    def merge(self, other: "TaskMetrics") -> None:
        self.tuples_read += other.tuples_read
        self.tuples_written += other.tuples_written
        self.tuples_shuffled += other.tuples_shuffled
        self.checks += other.checks
        self.join_tuples += other.join_tuples


@dataclass
class JobMetrics:
    """Aggregated metrics and timing for one MapReduce job."""

    name: str
    map_time: float = 0.0
    reduce_time: float = 0.0
    overhead: float = 0.0
    total_work: float = 0.0
    map_only: bool = True
    tuples_shuffled: int = 0
    output_tuples: int = 0

    @property
    def time(self) -> float:
        """Response time of the job: map and reduce phases are barriers."""
        return self.overhead + self.map_time + self.reduce_time

    def merge(self, other: "JobMetrics") -> "JobMetrics":
        """Fold another worker's view of the *same* job into this one.

        Workers run disjoint slices of a job's tasks in parallel, so
        phase times combine by max and work/tuple counters by sum; the
        fixed job overhead is paid once, not per worker.
        """
        if other.name != self.name:
            raise ValueError(
                f"cannot merge metrics of job {other.name!r} into {self.name!r}"
            )
        self.map_time = max(self.map_time, other.map_time)
        self.reduce_time = max(self.reduce_time, other.reduce_time)
        # Engine-produced totals include the job overhead once per
        # worker run; strip the duplicate so the merged total pays it
        # once (hand-built metrics with overhead 0 are unaffected).
        self.total_work += other.total_work - min(self.overhead, other.overhead)
        self.overhead = max(self.overhead, other.overhead)
        self.map_only = self.map_only and other.map_only
        self.tuples_shuffled += other.tuples_shuffled
        self.output_tuples += other.output_tuples
        return self


@dataclass
class ExecutionReport:
    """End-to-end execution statistics of a job DAG."""

    jobs: list[JobMetrics] = field(default_factory=list)
    levels: list[list[str]] = field(default_factory=list)
    response_time: float = 0.0
    total_work: float = 0.0
    #: name of the execution backend that produced this report
    backend: str = "serial"
    #: number of store shards the execution spanned (0 = unsharded).
    #: Set by the shard router after merging the per-shard reports.
    shards: int = 0
    #: how shards were reached: "local" (no shards / single store),
    #: "inproc" (in-process shard backends) or "rpc" (shard server
    #: processes).  Set by the shard router after merging.
    transport: str = "local"
    #: request bytes shipped to each shard server for this execution
    #: (RPC transport only; None otherwise)
    shard_bytes: tuple[int, ...] | None = None
    #: request frames shipped to each shard server for this execution
    #: (RPC transport only; None otherwise).  With cross-query
    #: coalescing a frame may carry several queries' levels, so this
    #: can undershoot levels x shards.
    shard_frames: tuple[int, ...] | None = None

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    @property
    def num_map_only_jobs(self) -> int:
        return sum(1 for j in self.jobs if j.map_only)

    def job_signature(self) -> str:
        """The paper's Fig. 20/21 job annotation: 'M' for a map-only
        execution, otherwise the number of jobs."""
        if all(j.map_only for j in self.jobs):
            return "M"
        return str(self.num_jobs)

    def merge(self, other: "ExecutionReport") -> "ExecutionReport":
        """Combine another worker's partial report into this one.

        Per-worker reports of the same job DAG merge job-wise (matched by
        name; see :meth:`JobMetrics.merge`), union the level structure,
        and recompute the response time from the merged levels — each
        level costs its slowest job, levels are barriers.  Reports of
        disjoint DAGs simply concatenate.
        """
        by_name = {j.name: j for j in self.jobs}
        for job in other.jobs:
            mine = by_name.get(job.name)
            if mine is None:
                # Copy, never alias: a later merge into this report must
                # not mutate the donor report's job metrics.
                job = replace(job)
                self.jobs.append(job)
                by_name[job.name] = job
            else:
                mine.merge(job)
        for i, names in enumerate(other.levels):
            if i < len(self.levels):
                self.levels[i].extend(
                    n for n in names if n not in self.levels[i]
                )
            else:
                self.levels.append(list(names))
        if self.jobs:
            # Job-wise merge already deduplicated shared overheads.
            self.total_work = sum(j.total_work for j in self.jobs)
        else:
            self.total_work += other.total_work
        if self.levels:
            self.response_time = sum(
                max((by_name[n].time for n in lv if n in by_name), default=0.0)
                for lv in self.levels
            )
        else:
            self.response_time = max(self.response_time, other.response_time)
        if self.backend != other.backend:
            self.backend = f"{self.backend}+{other.backend}"
        self.shards = max(self.shards, other.shards)
        if self.transport == "local":
            self.transport = other.transport
        elif other.transport not in ("local", self.transport):
            self.transport = f"{self.transport}+{other.transport}"
        return self
