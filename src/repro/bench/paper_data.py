"""The paper's reported experimental numbers, transcribed verbatim.

Used by the benchmark harness to print paper-vs-measured tables and to
check that the *shape* of each result holds (absolute numbers are
testbed-specific: the paper ran 7 physical nodes over LUBM10k/1 G
triples; this repo runs a simulated cluster over scaled LUBM).
"""

from __future__ import annotations

#: Row order of Figs. 16-19.
OPTION_ORDER = ("MXC+", "XC+", "MSC+", "SC+", "MXC", "XC", "MSC", "SC")

#: Column order of Figs. 16-19.
SHAPE_ORDER = ("chain", "dense", "thin", "star")

#: Fig. 16 — average number of plans per algorithm and query shape.
FIG16_PLAN_COUNTS: dict[str, dict[str, float]] = {
    "MXC+": {"chain": 0.4, "dense": 0.4, "thin": 0.4, "star": 1},
    "XC+": {"chain": 0.4, "dense": 0.4, "thin": 0.4, "star": 1},
    "MSC+": {"chain": 2.1, "dense": 1.1, "thin": 2.1, "star": 1},
    "SC+": {"chain": 764.6, "dense": 1.2, "thin": 764.6, "star": 1},
    "MXC": {"chain": 5.4, "dense": 6.47, "thin": 5.4, "star": 1},
    "XC": {"chain": 52451.97, "dense": 166944.57, "thin": 51522.67, "star": 175273.80},
    "MSC": {"chain": 18.2, "dense": 26, "thin": 18.2, "star": 1},
    "SC": {"chain": 58948.33, "dense": 23871.90, "thin": 58394.27, "star": 54527.63},
}

#: Fig. 17 — average optimality ratio (HO plans / produced plans), in %.
FIG17_OPTIMALITY_RATIO: dict[str, dict[str, float]] = {
    "MXC+": {"chain": 40, "dense": 40, "thin": 40, "star": 100},
    "XC+": {"chain": 40, "dense": 40, "thin": 40, "star": 100},
    "MSC+": {"chain": 100, "dense": 100, "thin": 100, "star": 100},
    "SC+": {"chain": 71.9, "dense": 100, "thin": 71.9, "star": 100},
    "MXC": {"chain": 100, "dense": 100, "thin": 100, "star": 100},
    "XC": {"chain": 34.8, "dense": 24.0, "thin": 34.8, "star": 22.8},
    "MSC": {"chain": 100, "dense": 100, "thin": 100, "star": 100},
    "SC": {"chain": 32.6, "dense": 21.5, "thin": 32.6, "star": 21.5},
}

#: Fig. 18 — average optimization time in milliseconds.
FIG18_OPTIMIZATION_TIME_MS: dict[str, dict[str, float]] = {
    "MXC+": {"chain": 2.80, "dense": 0.17, "thin": 0.83, "star": 0.1},
    "XC+": {"chain": 0.63, "dense": 0.07, "thin": 0.20, "star": 0.13},
    "MSC+": {"chain": 3.73, "dense": 0.10, "thin": 4.30, "star": 0.10},
    "SC+": {"chain": 1836.47, "dense": 0.17, "thin": 1833.57, "star": 0.03},
    "MXC": {"chain": 42.03, "dense": 1.77, "thin": 40.77, "star": 0.43},
    "XC": {"chain": 13046.43, "dense": 32023.50, "thin": 12942.5, "star": 33442.73},
    "MSC": {"chain": 197.5, "dense": 4.73, "thin": 195.47, "star": 0.43},
    "SC": {"chain": 41095.07, "dense": 53859.87, "thin": 41262.33, "star": 61714.77},
}

#: Fig. 19 — average uniqueness ratio (unique / produced plans), in %.
FIG19_UNIQUENESS_RATIO: dict[str, dict[str, float]] = {
    "MXC+": {"chain": 100, "dense": 100, "thin": 100, "star": 100},
    "XC+": {"chain": 100, "dense": 100, "thin": 100, "star": 100},
    "MSC+": {"chain": 100, "dense": 100, "thin": 100, "star": 100},
    "SC+": {"chain": 99.95, "dense": 98.89, "thin": 99.67, "star": 100},
    "MXC": {"chain": 100, "dense": 86.18, "thin": 100, "star": 100},
    "XC": {"chain": 97.80, "dense": 80.17, "thin": 98.63, "star": 91.01},
    "MSC": {"chain": 100, "dense": 91.50, "thin": 100, "star": 100},
    "SC": {"chain": 99.55, "dense": 62.89, "thin": 99.68, "star": 93.81},
}

#: Fig. 9 — HO classification of the eight variants.
FIG9_HO_CLASSIFICATION: dict[str, tuple[str, ...]] = {
    "HO-complete": ("SC",),
    "HO-partial": ("SC+", "MSC+", "MSC"),
    "HO-lossy": ("MXC+", "XC+", "MXC", "XC"),
}

#: Fig. 20 — per-query job counts (MSC | bushy | linear); 'M' = map-only.
FIG20_JOB_SIGNATURES: dict[str, str] = {
    "Q1": "MMM",
    "Q2": "MMM",
    "Q3": "M11",
    "Q4": "122",
    "Q5": "123",
    "Q6": "123",
    "Q7": "123",
    "Q8": "223",
    "Q9": "134",
    "Q10": "134",
    "Q11": "236",
    "Q12": "147",
    "Q13": "147",
    "Q14": "358",
}

#: Fig. 20 — headline speedups of the MSC plan on LUBM10k.
FIG20_MAX_SPEEDUP_VS_BUSHY = 2.0  # query Q9
FIG20_MAX_SPEEDUP_VS_LINEAR = 16.0  # query Q8

#: Fig. 21 — per-query job counts (CSQ | SHAPE-2f | H2RDF+).
FIG21_JOB_SIGNATURES: dict[str, str] = {
    "Q2": "M00",
    "Q3": "M10",
    "Q4": "100",
    "Q9": "103",
    "Q10": "102",
    "Q11": "212",
    "Q13": "111",
    "Q14": "324",
    "Q1": "M11",
    "Q5": "113",
    "Q6": "113",
    "Q7": "113",
    "Q8": "113",
    "Q12": "114",
}

#: Fig. 21 — queries PWOC under each system's partitioning.
FIG21_SHAPE_PWOC = ("Q2", "Q4", "Q9", "Q10")
FIG21_CSQ_PWOC = ("Q1", "Q2", "Q3")

#: Fig. 22 — (#triple patterns, #join variables, |Q| on LUBM10k).
FIG22_TABLE: dict[str, tuple[int, int, float]] = {
    "Q1": (2, 1, 3.7e9),
    "Q2": (2, 1, 1900),
    "Q3": (3, 1, 282_200),
    "Q4": (4, 2, 93),
    "Q5": (5, 3, 56.1e6),
    "Q6": (5, 3, 7.9e6),
    "Q7": (5, 3, 25.1e6),
    "Q8": (5, 3, 504.3e6),
    "Q9": (6, 3, 2528),
    "Q10": (6, 3, 439_900),
    "Q11": (8, 4, 1647),
    "Q12": (9, 4, 12.5e6),
    "Q13": (9, 4, 871),
    "Q14": (10, 5, 1413),
}

#: §6.4 — total workload wall-clock per system (minutes) on the paper's cluster.
TOTAL_WORKLOAD_MINUTES = {"CSQ": 44, "SHAPE-2f": 77, "H2RDF+": 23 * 60}
