"""repro.bench subpackage."""
