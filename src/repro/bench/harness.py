"""Benchmark harness: workload runners and paper-vs-measured tables.

Each ``benchmarks/test_figNN_*.py`` regenerates one table or figure of
the paper's evaluation section.  The heavy computations (plan-space
sweeps over the synthetic workload, LUBM executions) are shared and
cached at module level here so the four §6.2 figures reuse one sweep.
"""

from __future__ import annotations

import os
import statistics
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.algorithm import cliquesquare
from repro.core.decomposition import ALL_OPTIONS, DecompositionOption
from repro.core.properties import PlanSpaceStats, analyze_plan_space, optimal_height
from repro.sparql.ast import BGPQuery
from repro.workloads.synthetic import SHAPES, SyntheticWorkload

#: Environment knob: 1 = fast CI-ish run, 2+ = closer to the paper's scale.
BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "1"))

#: Per-(query, option) caps; the paper used a 100 s timeout.
PLAN_CAP = 20_000 * BENCH_SCALE
TIMEOUT_S = 2.0 * BENCH_SCALE


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table (printed under ``pytest -s`` and into the
    bench logs)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def paper_vs_measured_table(
    title: str,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    paper: dict[str, dict[str, float]],
    measured: dict[str, dict[str, float]],
    fmt: str = "{:.2f}",
) -> str:
    """Interleave paper and measured values per column."""
    headers = ["option"]
    for col in col_labels:
        headers += [f"{col}(paper)", f"{col}(ours)"]
    rows = []
    for label in row_labels:
        row: list[object] = [label]
        for col in col_labels:
            row.append(fmt.format(paper[label][col]))
            row.append(fmt.format(measured[label][col]))
        rows.append(row)
    return format_table(headers, rows, title=title)


# --- the §6.2 synthetic-workload sweep (shared by Figs. 16-19) ---------------


@dataclass
class SweepResult:
    """Plan-space statistics for every (option, shape, query)."""

    stats: dict[tuple[str, str], list[PlanSpaceStats]] = field(default_factory=dict)

    def average(self, metric, option: DecompositionOption, shape: str) -> float:
        values = [metric(s) for s in self.stats[(option.name, shape)]]
        return statistics.fmean(values) if values else 0.0

    def table(self, metric) -> dict[str, dict[str, float]]:
        out: dict[str, dict[str, float]] = {}
        for option in ALL_OPTIONS:
            out[option.name] = {
                shape: self.average(metric, option, shape) for shape in SHAPES
            }
        return out


_SWEEP_CACHE: dict[tuple, SweepResult] = {}


def synthetic_queries() -> dict[str, list[BGPQuery]]:
    """The §6.2 workload: queries of 1..10 patterns per shape."""
    per_shape = 10 * BENCH_SCALE
    return SyntheticWorkload(queries_per_shape=per_shape).generate()


def plan_space_sweep() -> SweepResult:
    """Run all eight variants over the synthetic workload (cached)."""
    key = (BENCH_SCALE,)
    if key in _SWEEP_CACHE:
        return _SWEEP_CACHE[key]
    result = SweepResult()
    for shape, queries in synthetic_queries().items():
        references = {id(q): optimal_height(q, timeout_s=TIMEOUT_S) for q in queries}
        for option in ALL_OPTIONS:
            bucket: list[PlanSpaceStats] = []
            for q in queries:
                bucket.append(
                    analyze_plan_space(
                        q,
                        option,
                        max_plans=PLAN_CAP,
                        timeout_s=TIMEOUT_S,
                        reference_height=references[id(q)],
                    )
                )
            result.stats[(option.name, shape)] = bucket
    _SWEEP_CACHE[key] = result
    return result


# --- LUBM fixtures shared by Figs. 20-22 --------------------------------------


_LUBM_CACHE: dict[tuple, object] = {}


def lubm_graph():
    """The scaled LUBM dataset used by the execution benchmarks."""
    from repro.workloads import lubm

    key = ("graph", BENCH_SCALE)
    if key not in _LUBM_CACHE:
        cfg = lubm.LUBMConfig(universities=20 * BENCH_SCALE)
        _LUBM_CACHE[key] = lubm.generate(cfg)
    return _LUBM_CACHE[key]


def lubm_csq():
    """A CSQ deployment over the benchmark dataset (7 simulated nodes,
    Hadoop-style job overhead)."""
    from repro.cost.params import CostParams
    from repro.systems.csq import CSQ, CSQConfig

    key = ("csq", BENCH_SCALE)
    if key not in _LUBM_CACHE:
        _LUBM_CACHE[key] = CSQ(
            lubm_graph(),
            CSQConfig(params=CostParams(job_overhead=400.0)),
        )
    return _LUBM_CACHE[key]


def lubm_comparators():
    """SHAPE-2f and H2RDF+ over the same dataset."""
    from repro.systems.h2rdf import H2RDFPlus
    from repro.systems.shape import ShapeSystem

    key = ("comparators", BENCH_SCALE)
    if key not in _LUBM_CACHE:
        graph = lubm_graph()
        _LUBM_CACHE[key] = (ShapeSystem(graph), H2RDFPlus(graph))
    return _LUBM_CACHE[key]
