"""The 14-query LUBM workload of Appendix A.

Queries marked *(original)* in the paper come from the LUBM benchmark
(with generic types specialized, as in [27]); the others were devised by
the authors to add complexity.  Figure 22 records for each query the
number of triple patterns (#tps) and join variables (#jv) — those are
data-independent and asserted by our tests; result cardinalities depend
on the dataset scale.

The paper's selective/non-selective split at LUBM10k (Fig. 21): Q2, Q3,
Q4, Q9, Q10, Q11, Q13, Q14 are selective; Q1, Q5, Q6, Q7, Q8, Q12 are
non-selective.
"""

from __future__ import annotations

from repro.sparql.ast import BGPQuery
from repro.sparql.parser import parse_query
from repro.workloads.lubm import UNIVERSITY0

_Q = {
    "Q1": """
        SELECT ?P ?S WHERE {
            ?P ub:worksFor ?D .
            ?S ub:memberOf ?D . }
    """,
    "Q2": f"""
        SELECT ?X WHERE {{
            ?X rdf:type ub:AssistantProfessor .
            ?X ub:doctoralDegreeFrom {UNIVERSITY0} }}
    """,
    "Q3": f"""
        SELECT ?P ?S WHERE {{
            ?P ub:worksFor ?D .
            ?S ub:memberOf ?D .
            ?D ub:subOrganizationOf {UNIVERSITY0} }}
    """,
    "Q4": f"""
        SELECT ?X ?Y WHERE {{
            ?X rdf:type ub:Lecturer .
            ?Y rdf:type ub:Department .
            ?X ub:worksFor ?Y .
            ?Y ub:subOrganizationOf {UNIVERSITY0} }}
    """,
    "Q5": """
        SELECT ?X ?Y ?Z WHERE {
            ?X rdf:type ub:UndergraduateStudent .
            ?Y rdf:type ub:FullProfessor .
            ?Z rdf:type ub:Course .
            ?X ub:takesCourse ?Z .
            ?Y ub:teacherOf ?Z }
    """,
    "Q6": """
        SELECT ?X ?Y ?Z WHERE {
            ?X rdf:type ub:UndergraduateStudent .
            ?Y rdf:type ub:FullProfessor .
            ?Z rdf:type ub:Course .
            ?X ub:advisor ?Y .
            ?Y ub:teacherOf ?Z }
    """,
    "Q7": """
        SELECT ?X ?Y ?Z WHERE {
            ?X a ub:GraduateStudent .
            ?Z ub:subOrganizationOf ?Y .
            ?X ub:memberOf ?Z .
            ?Z a ub:Department .
            ?Y a ub:University . }
    """,
    "Q8": """
        SELECT ?X ?Y ?Z WHERE {
            ?X a ub:GraduateStudent .
            ?X ub:undergraduateDegreeFrom ?Y .
            ?Z ub:subOrganizationOf ?Y .
            ?Z a ub:Department .
            ?Y a ub:University . }
    """,
    "Q9": """
        SELECT ?X ?Y ?Z WHERE {
            ?X a ub:GraduateStudent .
            ?X ub:undergraduateDegreeFrom ?Y .
            ?Z ub:subOrganizationOf ?Y .
            ?X ub:memberOf ?Z .
            ?Z a ub:Department .
            ?Y a ub:University . }
    """,
    "Q10": """
        SELECT ?X ?Y ?Z WHERE {
            ?X rdf:type ub:UndergraduateStudent .
            ?Y rdf:type ub:FullProfessor .
            ?Z rdf:type ub:Course .
            ?X ub:advisor ?Y .
            ?X ub:takesCourse ?Z .
            ?Y ub:teacherOf ?Z }
    """,
    "Q11": """
        SELECT ?X ?Y ?E WHERE {
            ?X rdf:type ub:UndergraduateStudent .
            ?X ub:takesCourse ?Y .
            ?X ub:memberOf ?Z .
            ?X ub:advisor ?W .
            ?W rdf:type ub:FullProfessor .
            ?W ub:emailAddress ?E .
            ?Z ub:subOrganizationOf ?U .
            ?U ub:name "University3" }
    """,
    "Q12": """
        SELECT ?X ?Y ?Z WHERE {
            ?X rdf:type ub:FullProfessor .
            ?X ub:teacherOf ?Y .
            ?Y rdf:type ub:GraduateCourse .
            ?X ub:worksFor ?Z .
            ?W ub:advisor ?X .
            ?W rdf:type ub:GraduateStudent .
            ?W ub:emailAddress ?E .
            ?Z rdf:type ub:Department .
            ?Z ub:subOrganizationOf ?U }
    """,
    "Q13": f"""
        SELECT ?X ?Y ?Z WHERE {{
            ?X rdf:type ub:FullProfessor .
            ?X ub:teacherOf ?Y .
            ?Y rdf:type ub:GraduateCourse .
            ?X ub:worksFor ?Z .
            ?W ub:advisor ?X .
            ?W rdf:type ub:GraduateStudent .
            ?W ub:emailAddress ?E .
            ?Z rdf:type ub:Department .
            ?Z ub:subOrganizationOf {UNIVERSITY0} }}
    """,
    "Q14": """
        SELECT ?X ?Y ?Z WHERE {
            ?X rdf:type ub:FullProfessor .
            ?X ub:teacherOf ?Y .
            ?Y rdf:type ub:GraduateCourse .
            ?X ub:worksFor ?Z .
            ?W ub:advisor ?X .
            ?W rdf:type ub:GraduateStudent .
            ?W ub:emailAddress ?E .
            ?Z rdf:type ub:Department .
            ?Z ub:subOrganizationOf ?U .
            ?U ub:name "University3" }
    """,
}

#: Query names in workload order.
QUERY_NAMES: tuple[str, ...] = tuple(f"Q{i}" for i in range(1, 15))

#: Fig. 22 structural characteristics: name -> (#triple patterns, #join vars).
FIG22_CHARACTERISTICS: dict[str, tuple[int, int]] = {
    "Q1": (2, 1),
    "Q2": (2, 1),
    "Q3": (3, 1),
    "Q4": (4, 2),
    "Q5": (5, 3),
    "Q6": (5, 3),
    "Q7": (5, 3),
    "Q8": (5, 3),
    "Q9": (6, 3),
    "Q10": (6, 3),
    "Q11": (8, 4),
    "Q12": (9, 4),
    "Q13": (9, 4),
    "Q14": (10, 5),
}

#: Fig. 21's selectivity classes at LUBM10k.
SELECTIVE: frozenset[str] = frozenset(
    {"Q2", "Q3", "Q4", "Q9", "Q10", "Q11", "Q13", "Q14"}
)
NON_SELECTIVE: frozenset[str] = frozenset(
    {"Q1", "Q5", "Q6", "Q7", "Q8", "Q12"}
)

#: Queries taken unchanged (modulo type specialization) from LUBM.
ORIGINAL: frozenset[str] = frozenset({"Q2", "Q4", "Q9", "Q10"})


def query(name: str) -> BGPQuery:
    """One of Q1..Q14, parsed."""
    try:
        text = _Q[name]
    except KeyError:
        raise KeyError(f"unknown workload query {name!r}") from None
    return parse_query(text, name=name)


def all_queries() -> list[BGPQuery]:
    """The full 14-query workload, in order."""
    return [query(name) for name in QUERY_NAMES]
