"""repro.workloads subpackage."""
