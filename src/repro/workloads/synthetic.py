"""Synthetic query generator — the §6.2 workload.

The paper builds 120 synthetic queries with the generator of [10]:
shapes *chain*, *star*, and *random*, the latter in *thin* (chain-like,
few shared variables) and *dense* (many shared variables) variants, with
1 to 10 triple patterns each.  This module reproduces those four shape
families, seeded for determinism.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from repro.sparql.ast import BGPQuery, TriplePattern

SHAPES = ("chain", "star", "thin", "dense")


def chain_query(n: int, name: str = "") -> BGPQuery:
    """A chain of n patterns: t_i and t_{i+1} share one variable, each
    edge a distinct variable (the worst case for minimum-cover sizes)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    patterns = [
        TriplePattern(f"?v{i}", f"p{i + 1}", f"?v{i + 1}") for i in range(n)
    ]
    return BGPQuery(
        distinguished=("?v0",), patterns=tuple(patterns), name=name or f"chain{n}"
    )


def star_query(n: int, name: str = "") -> BGPQuery:
    """A star: every pattern shares the central variable (one maximal
    clique covering the whole graph)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    patterns = [TriplePattern("?c", f"p{i + 1}", f"?o{i + 1}") for i in range(n)]
    return BGPQuery(
        distinguished=("?c",), patterns=tuple(patterns), name=name or f"star{n}"
    )


def random_query(
    n: int,
    dense: bool,
    rng: random.Random,
    name: str = "",
) -> BGPQuery:
    """A random connected query.

    *thin* queries link each new pattern to one previous pattern with a
    fresh variable (a random tree — "close to chains", §6.2); *dense*
    queries draw subject/object variables from a small pool, so triples
    share many variables.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if n == 1:
        return BGPQuery(
            distinguished=("?v0",),
            patterns=(TriplePattern("?v0", "p1", "?v1"),),
            name=name or "rand1",
        )
    if not dense:
        patterns: list[TriplePattern] = [TriplePattern("?v0", "p1", "?v1")]
        next_var = 2
        for i in range(1, n):
            target = rng.randrange(len(patterns))
            link = rng.choice(patterns[target].variables())
            fresh = f"?v{next_var}"
            next_var += 1
            if rng.random() < 0.5:
                patterns.append(TriplePattern(link, f"p{i + 1}", fresh))
            else:
                patterns.append(TriplePattern(fresh, f"p{i + 1}", link))
        query = BGPQuery(
            distinguished=(patterns[0].variables()[0],),
            patterns=tuple(patterns),
            name=name or f"thin{n}",
        )
        return query
    # Dense: small variable pool -> heavily shared variables.
    pool_size = max(2, (n + 1) // 2)
    pool = [f"?v{i}" for i in range(pool_size)]
    while True:
        patterns = []
        for i in range(n):
            s, o = rng.sample(pool, 2)
            patterns.append(TriplePattern(s, f"p{i + 1}", o))
        query = BGPQuery(
            distinguished=(pool[0],), patterns=tuple(patterns), name=name or f"dense{n}"
        )
        if query.is_connected() and len(query.join_variables()) >= 1:
            return query


@dataclass(frozen=True)
class SyntheticWorkload:
    """A reproducible batch of synthetic queries per shape."""

    queries_per_shape: int = 30
    min_patterns: int = 1
    max_patterns: int = 10
    seed: int = 8612

    def generate(self, shapes: Iterable[str] = SHAPES) -> dict[str, list[BGPQuery]]:
        """Queries per shape; sizes sweep min..max cyclically (avg ~5.5,
        like the paper's 120-query workload)."""
        rng = random.Random(self.seed)
        out: dict[str, list[BGPQuery]] = {}
        sizes = list(range(self.min_patterns, self.max_patterns + 1))
        for shape in shapes:
            if shape not in SHAPES:
                raise ValueError(f"unknown shape {shape!r}")
            queries: list[BGPQuery] = []
            for i in range(self.queries_per_shape):
                n = sizes[i % len(sizes)]
                qname = f"{shape}-{i}-n{n}"
                if shape == "chain":
                    queries.append(chain_query(n, qname))
                elif shape == "star":
                    queries.append(star_query(n, qname))
                elif shape == "thin":
                    queries.append(random_query(n, dense=False, rng=rng, name=qname))
                else:
                    queries.append(random_query(n, dense=True, rng=rng, name=qname))
            out[shape] = queries
        return out
