"""A deterministic, scaled-down LUBM data generator.

LUBM [12] models universities: each university has departments; each
department employs professors (full/associate/assistant) and lecturers,
offers courses and graduate courses, and hosts undergraduate and
graduate students.  The paper evaluates on LUBM10k (~1 G triples); this
generator reproduces the *schema* and the statistical skew that drives
the 14-query workload's selectivity classes at a laptop-friendly scale
(the ``universities`` knob scales it).

Biases that keep the paper's selective queries non-empty:

* some graduate students hold their undergraduate degree from the
  university they currently study at (Q9);
* some undergraduates take a course taught by their advisor (Q10);
* doctoral degrees are spread over all universities, so University0
  sees a few assistant-professor alumni (Q2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.rdf.graph import RDFGraph
from repro.rdf.terms import RDF_TYPE

#: The IRI the queries use for university 0 (Appendix A, Q2/Q3/Q4/Q13).
UNIVERSITY0 = "<http://www.University0.edu>"


def university_iri(index: int) -> str:
    return f"<http://www.University{index}.edu>"


@dataclass(frozen=True)
class LUBMConfig:
    """Size and skew knobs of the generator (defaults give ~20 K triples)."""

    universities: int = 20
    departments_per_university: int = 5
    full_professors_per_department: int = 2
    associate_professors_per_department: int = 2
    assistant_professors_per_department: int = 2
    lecturers_per_department: int = 1
    undergraduates_per_department: int = 14
    graduates_per_department: int = 4
    courses_per_teacher: int = 2
    undergrad_courses_taken: int = 3
    grad_courses_taken: int = 2
    #: probability a graduate's undergraduate degree is from the current
    #: university (drives Q9's selectivity)
    home_degree_probability: float = 0.2
    #: probability an undergraduate takes one course taught by their
    #: advisor (drives Q10's selectivity)
    advisor_course_probability: float = 0.3
    seed: int = 20150413

    def __post_init__(self) -> None:
        if self.universities < 4:
            raise ValueError(
                "need at least 4 universities: the workload queries "
                "reference University0 and University3"
            )


def generate(config: LUBMConfig | None = None) -> RDFGraph:
    """Generate the scaled LUBM dataset as an RDF graph."""
    cfg = config or LUBMConfig()
    rng = random.Random(cfg.seed)
    graph = RDFGraph()

    universities = [university_iri(i) for i in range(cfg.universities)]
    for i, univ in enumerate(universities):
        graph.add(univ, RDF_TYPE, "ub:University")
        graph.add(univ, "ub:name", f'"University{i}"')

    professor_types = (
        ("ub:FullProfessor", "full_professors_per_department"),
        ("ub:AssociateProfessor", "associate_professors_per_department"),
        ("ub:AssistantProfessor", "assistant_professors_per_department"),
    )

    for ui, univ in enumerate(universities):
        for di in range(cfg.departments_per_university):
            dept = f"<Department{di}.University{ui}>"
            graph.add(dept, RDF_TYPE, "ub:Department")
            graph.add(dept, "ub:subOrganizationOf", univ)

            teachers: list[tuple[str, str]] = []  # (iri, type)
            for rdf_class, knob in professor_types:
                for pi in range(getattr(cfg, knob)):
                    prof = f"<{rdf_class[3:]}{pi}.D{di}.U{ui}>"
                    teachers.append((prof, rdf_class))
            for li in range(cfg.lecturers_per_department):
                teachers.append((f"<Lecturer{li}.D{di}.U{ui}>", "ub:Lecturer"))

            courses: list[str] = []
            grad_courses: list[str] = []
            course_teacher: dict[str, str] = {}
            for prof, rdf_class in teachers:
                graph.add(prof, RDF_TYPE, rdf_class)
                graph.add(prof, "ub:worksFor", dept)
                graph.add(prof, "ub:emailAddress", f'"{prof[1:-1]}@u{ui}.edu"')
                graph.add(prof, "ub:doctoralDegreeFrom", rng.choice(universities))
                for ci in range(cfg.courses_per_teacher):
                    graduate = (ci % 2 == 1) and rdf_class != "ub:Lecturer"
                    kind = "GraduateCourse" if graduate else "Course"
                    course = f"<{kind}{len(courses) + len(grad_courses)}.{prof[1:-1]}>"
                    graph.add(course, RDF_TYPE, f"ub:{kind}")
                    graph.add(prof, "ub:teacherOf", course)
                    course_teacher[course] = prof
                    (grad_courses if graduate else courses).append(course)

            professors = [p for p, c in teachers if c != "ub:Lecturer"]
            full_professors = [p for p, c in teachers if c == "ub:FullProfessor"]

            for si in range(cfg.undergraduates_per_department):
                student = f"<UndergraduateStudent{si}.D{di}.U{ui}>"
                graph.add(student, RDF_TYPE, "ub:UndergraduateStudent")
                graph.add(student, "ub:memberOf", dept)
                advisor = rng.choice(professors)
                graph.add(student, "ub:advisor", advisor)
                taken = set(
                    rng.sample(courses, min(cfg.undergrad_courses_taken, len(courses)))
                )
                if rng.random() < cfg.advisor_course_probability:
                    advisor_courses = [
                        c for c, t in course_teacher.items()
                        if t == advisor and c in courses
                    ]
                    if advisor_courses:
                        taken.add(rng.choice(advisor_courses))
                for course in taken:
                    graph.add(student, "ub:takesCourse", course)

            for si in range(cfg.graduates_per_department):
                student = f"<GraduateStudent{si}.D{di}.U{ui}>"
                graph.add(student, RDF_TYPE, "ub:GraduateStudent")
                graph.add(student, "ub:memberOf", dept)
                graph.add(student, "ub:emailAddress", f'"grad{si}.d{di}@u{ui}.edu"')
                if rng.random() < cfg.home_degree_probability:
                    degree = univ
                else:
                    degree = rng.choice(universities)
                graph.add(student, "ub:undergraduateDegreeFrom", degree)
                graph.add(student, "ub:advisor", rng.choice(full_professors))
                for course in rng.sample(
                    grad_courses, min(cfg.grad_courses_taken, len(grad_courses))
                ):
                    graph.add(student, "ub:takesCourse", course)

    return graph
