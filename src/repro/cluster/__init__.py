"""repro.cluster — the sharded store, shard router and RPC shard workers.

The distribution layer behind the query service: a
:class:`~repro.cluster.sharded_store.ShardedStore` hash-partitions the
§5.1 replicated layout across N shard workers (logical nodes hash onto
a fixed ring of slots and a versioned
:class:`~repro.cluster.slots.SlotTable` maps slots to shards — the
version-0 table reproduces the classic ``n % N`` layout, so every
co-location guarantee the planner relies on holds shard-locally), a
:class:`~repro.cluster.router.ShardRouter` ships task specs to shards
and runs the cross-shard exchange between map and reduce phases, and
per-shard catalog statistics aggregate into the exact global catalog
the cost model consumes.  Enable it with ``ServiceConfig(shards=N)`` —
answers are identical for any shard count and any execution backend.

Because ownership is a movable table rather than a frozen modulus, the
topology is elastic: :meth:`~repro.cluster.router.ShardedPlanExecutor
.rebalance` grows, shrinks or deskews the shard fleet by moving slot
ownership, shipping only the moved slots' snapshot slices (over RPC,
as :class:`~repro.cluster.rpc.PrimeSlots` deltas) and flipping the
table version — answers are invariant at every epoch.

Two shard transports share that router logic
(``ServiceConfig(shard_transport=...)``):

* ``"inproc"`` — shards are in-process execution backends (function
  call boundary, per-shard worker pools);
* ``"rpc"`` (:mod:`repro.cluster.rpc`) — shards are long-lived server
  processes over localhost sockets that hold their snapshot, registered
  templates and a local backend resident; per query, only bound
  constant vectors, level metadata and exchange rows cross the wire.
  Crashed workers are respawned with a one-retry budget; sustained
  failure raises a typed :class:`~repro.cluster.rpc.ShardUnavailable`.
"""

from repro.cluster.router import (
    RebalanceReport,
    ShardedPlanExecutor,
    ShardRouter,
    ShardRunSummary,
)
from repro.cluster.rpc import (
    RpcShardRouter,
    ShardUnavailable,
    ShardWorkerClient,
    StaleEpoch,
)
from repro.cluster.sharded_store import (
    ShardedSnapshot,
    ShardedStore,
    shard_graph,
)
from repro.cluster.slots import (
    DEFAULT_SLOTS,
    Move,
    SlotTable,
    plan_resize,
    plan_skew,
)

__all__ = [
    "DEFAULT_SLOTS",
    "Move",
    "RebalanceReport",
    "RpcShardRouter",
    "ShardRouter",
    "ShardRunSummary",
    "ShardUnavailable",
    "ShardWorkerClient",
    "ShardedPlanExecutor",
    "ShardedSnapshot",
    "ShardedStore",
    "SlotTable",
    "StaleEpoch",
    "plan_resize",
    "plan_skew",
    "shard_graph",
]
