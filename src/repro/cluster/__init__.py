"""repro.cluster — the sharded store and shard router.

The distribution layer behind the query service: a
:class:`~repro.cluster.sharded_store.ShardedStore` hash-partitions the
§5.1 replicated layout across N shard workers (logical node ``n`` lives
on shard ``n % N``, so every co-location guarantee the planner relies on
holds shard-locally), a :class:`~repro.cluster.router.ShardRouter` ships
task specs to shards and runs the cross-shard exchange between map and
reduce phases, and per-shard catalog statistics aggregate into the exact
global catalog the cost model consumes.  Enable it with
``ServiceConfig(shards=N)`` — answers are identical for any shard count
and any execution backend.
"""

from repro.cluster.router import ShardedPlanExecutor, ShardRouter, ShardRunSummary
from repro.cluster.sharded_store import (
    ShardedSnapshot,
    ShardedStore,
    shard_graph,
)

__all__ = [
    "ShardRouter",
    "ShardRunSummary",
    "ShardedPlanExecutor",
    "ShardedSnapshot",
    "ShardedStore",
    "shard_graph",
]
