"""Slot-table shard ownership — the movable node→shard map.

The seed cluster froze ownership at construction: node ``n`` belonged
to shard ``n % num_shards`` forever, so the topology could never grow,
shrink, or shed skew.  This module replaces that modulus with a level
of indirection: logical nodes hash onto a fixed ring of **slots**
(``slot_of_node = node % slots``), and a versioned, immutable
:class:`SlotTable` maps each slot to its owning shard.  Moving data
between shards is then "reassign some slots and ship those slots'
snapshot slices" — the placement itself (§5.1 co-location) never
changes, so answers are identical at every table version.

The table is consulted everywhere the modulus used to be: map-level
locality, shuffle exchange routing, per-shard catalog merge and
``Prime`` slicing.  Construction keeps ``slots >= num_nodes`` so the
initial table reproduces the seed ``n % N`` layout exactly (slot ``n``
*is* node ``n`` for every real node).

Rebalance plans are tuples of ``(slot, src, dst)`` moves.  They are
data, not actions: :func:`plan_resize` and :func:`plan_skew` produce
them, :meth:`SlotTable.apply` validates and applies them, and the
router/store layers turn them into migration traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.partitioning.triple_partitioner import StoreSnapshot

#: Default ring size.  Any real deployment's ``num_nodes`` caps it from
#: below (see :func:`initial_table`), so 64 only matters for clusters
#: with fewer than 64 logical nodes — where it still leaves room to
#: split ownership far finer than the shard count.
DEFAULT_SLOTS = 64

#: One slot reassignment: ``(slot, src_shard, dst_shard)``.
Move = tuple[int, int, int]


@dataclass(frozen=True)
class SlotTable:
    """Immutable slots→shards ownership map at one version.

    ``owners[s]`` is the shard owning slot ``s``; ``version`` is the
    topology epoch — every applied plan bumps it by exactly one, and
    the RPC protocol rejects frames stamped with another epoch.
    """

    num_shards: int
    owners: tuple[int, ...]
    version: int = 0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if not self.owners:
            raise ValueError("a slot table needs at least one slot")
        bad = [s for s in self.owners if not 0 <= s < self.num_shards]
        if bad:
            raise ValueError(
                f"slot owners {sorted(set(bad))} outside "
                f"[0, {self.num_shards})"
            )

    @property
    def slots(self) -> int:
        return len(self.owners)

    # -- lookups (the old modulus sites) ----------------------------------

    def slot_of_node(self, node: int) -> int:
        return node % len(self.owners)

    def shard_of_node(self, node: int) -> int:
        return self.owners[node % len(self.owners)]

    def nodes_of_shard(self, shard: int, num_nodes: int) -> list[int]:
        """All logical nodes the table assigns to *shard*."""
        owners = self.owners
        slots = len(owners)
        return [n for n in range(num_nodes) if owners[n % slots] == shard]

    def slots_of_shard(self, shard: int) -> tuple[int, ...]:
        return tuple(
            s for s, owner in enumerate(self.owners) if owner == shard
        )

    def counts(self) -> list[int]:
        """Slots owned per shard (length ``num_shards``)."""
        out = [0] * self.num_shards
        for owner in self.owners:
            out[owner] += 1
        return out

    # -- transitions ------------------------------------------------------

    def apply(self, moves: Sequence[Move], num_shards: int | None = None) -> "SlotTable":
        """The table after *moves*, one version later.

        Every move's source must match current ownership — applying a
        plan computed against another version is a programming error
        and raises rather than silently corrupting the map.  Passing
        *num_shards* resizes the shard count in the same step (grow
        before moving slots in, shrink after moving slots out).
        """
        new_count = self.num_shards if num_shards is None else num_shards
        owners = list(self.owners)
        seen: set[int] = set()
        for slot, src, dst in moves:
            if not 0 <= slot < len(owners):
                raise ValueError(f"slot {slot} outside [0, {len(owners)})")
            if slot in seen:
                raise ValueError(f"slot {slot} moved twice in one plan")
            seen.add(slot)
            if owners[slot] != src:
                raise ValueError(
                    f"slot {slot} is owned by shard {owners[slot]}, "
                    f"not {src}: stale plan"
                )
            owners[slot] = dst
        return SlotTable(
            num_shards=new_count,
            owners=tuple(owners),
            version=self.version + 1,
        )

    def inverse(self, moves: Sequence[Move]) -> tuple[Move, ...]:
        """The plan undoing *moves* (for rollback after a failed flip)."""
        return tuple((slot, dst, src) for slot, src, dst in moves)


def initial_table(num_shards: int, num_nodes: int, slots: int = DEFAULT_SLOTS) -> SlotTable:
    """The version-0 table reproducing the seed ``n % num_shards`` layout.

    The ring is widened to ``max(slots, num_nodes)`` so every real node
    occupies its own slot (``slot_of_node(n) == n``), which makes
    ``owners[s] = s % num_shards`` assign node ``n`` to shard
    ``n % num_shards`` — byte-identical to the pre-slot-table layout.
    """
    if slots < 1:
        raise ValueError("slots must be >= 1")
    width = max(slots, num_nodes)
    return SlotTable(
        num_shards=num_shards,
        owners=tuple(s % num_shards for s in range(width)),
    )


def plan_resize(table: SlotTable, new_num_shards: int) -> tuple[Move, ...]:
    """A minimal, deterministic plan resizing the topology.

    Donors are the slots that *must* move: everything owned by a
    removed shard, plus the highest-numbered slots shed by shards above
    their new target share.  Each donor goes to the lowest-id shard
    still under target, so growing by one moves ~``slots/new_N`` slots
    and shrinking by one moves exactly the departing shard's slots —
    the minimal-movement bound the property tests assert.
    """
    if new_num_shards < 1:
        raise ValueError("new_num_shards must be >= 1")
    if new_num_shards > len(table.owners):
        raise ValueError(
            f"cannot spread {len(table.owners)} slots over "
            f"{new_num_shards} shards: at most one shard per slot"
        )
    slots = len(table.owners)
    base, extra = divmod(slots, new_num_shards)
    target = [base + (1 if s < extra else 0) for s in range(new_num_shards)]
    counts = [0] * new_num_shards
    for owner in table.owners:
        if owner < new_num_shards:
            counts[owner] += 1
    donors: list[tuple[int, int]] = []  # (slot, src)
    # Removed shards donate everything they own.
    for slot, owner in enumerate(table.owners):
        if owner >= new_num_shards:
            donors.append((slot, owner))
    # Overloaded surviving shards shed their highest-numbered slots.
    excess = {
        s: counts[s] - target[s]
        for s in range(new_num_shards)
        if counts[s] > target[s]
    }
    for slot in range(slots - 1, -1, -1):
        owner = table.owners[slot]
        if excess.get(owner, 0) > 0:
            donors.append((slot, owner))
            excess[owner] -= 1
    donors.sort()
    moves: list[Move] = []
    dst = 0
    for slot, src in donors:
        while counts[dst] >= target[dst]:
            dst += 1
        counts[dst] += 1
        moves.append((slot, src, dst))
    return tuple(moves)


def plan_skew(
    table: SlotTable, load: Mapping[int, float], max_moves: int = 1
) -> tuple[Move, ...]:
    """A small plan shifting slots from the busiest shard to the idlest.

    *load* maps shard → observed load (tasks run, queue depth — any
    monotone signal).  The plan moves up to *max_moves* of the busiest
    shard's highest-numbered slots to the least-loaded shard, provided
    the imbalance is real (busiest strictly above idlest) and the donor
    keeps at least one slot.  Deterministic: ties break on shard id.
    """
    if table.num_shards < 2:
        return ()
    scores = [float(load.get(s, 0.0)) for s in range(table.num_shards)]
    busiest = max(range(table.num_shards), key=lambda s: (scores[s], -s))
    idlest = min(range(table.num_shards), key=lambda s: (scores[s], s))
    if busiest == idlest or scores[busiest] <= scores[idlest]:
        return ()
    owned = sorted(table.slots_of_shard(busiest), reverse=True)
    movable = owned[: max(0, min(max_moves, len(owned) - 1))]
    return tuple((slot, busiest, idlest) for slot in sorted(movable))


def merge_slots(
    old: StoreSnapshot,
    adds: Mapping[int, Mapping[str, tuple]],
    drops: Sequence[int],
    token: tuple[int, int],
) -> StoreSnapshot:
    """A shard snapshot after a migration delta, deterministically.

    *adds* maps incoming node → its file map; *drops* lists outgoing
    nodes whose files this shard no longer owns.  Both the driver and
    the worker apply the same delta to equal snapshots (the worker's
    resident copy is a pickle of the driver's), iterating ``adds`` in
    sorted order, so the two ends converge on identical file maps — a
    requirement for the columnar wire codec, which seeds term ids from
    snapshot iteration order on both sides.
    """
    files = [dict(node_files) for node_files in old.files]
    for node in drops:
        files[node] = {}
    for node, node_files in sorted(adds.items()):
        files[node] = {name: tuple(ts) for name, ts in node_files.items()}
    return StoreSnapshot(
        num_nodes=old.num_nodes,
        replicas=old.replicas,
        files=tuple(files),
        token=token,
    )


__all__ = [
    "DEFAULT_SLOTS",
    "Move",
    "SlotTable",
    "initial_table",
    "merge_slots",
    "plan_resize",
    "plan_skew",
]
