"""RPC shard workers: long-lived shard server processes behind the router.

The in-process :class:`~repro.cluster.router.ShardRouter` calls into
per-shard execution backends by function call; this module replaces that
boundary with a real wire protocol.  Each shard is a **server process**
(stdlib :class:`multiprocessing.connection.Listener` on a localhost
socket, HMAC-authenticated, no third-party deps) that holds, resident:

* its shard's :class:`~repro.partitioning.triple_partitioner
  .StoreSnapshot` (installed by :class:`Prime`, re-installed only when
  the shard's snapshot token changes — a mutation re-primes only the
  shards it touched);
* the **registered templates**: the unbound physical plan of every
  template the service optimized, shipped once by
  :class:`RegisterTemplate` and bound worker-side (the same
  ``substitute_plan`` + ``compile_plan`` pipeline the driver uses, so
  compiled job structures are bit-identical on both ends);
* a local :class:`~repro.mapreduce.backends.ExecutionBackend` — the
  worker itself may fan its batch out on a process pool of its own,
  keyed to the snapshot token exactly like the in-process deployment.

After a template is registered once, a query crosses the wire as
per-level task metadata plus exchange rows (:class:`ExecuteLevel`,
naming the template key and constant vector the worker binds lazily):
the driver never re-ships task specs or operator chains.  Message
frames are pickled dataclasses with an explicit size cap; oversized
frames and unknown message types surface as typed errors, never hangs.

The connection is **multiplexed**: every frame travels in a
:class:`Request`/:class:`Reply` envelope carrying a request id.  The
worker's main thread is the connection's single reader; it dispatches
``ExecuteLevel``/:class:`ExecuteBatch` frames onto a small thread pool
(``pipeline`` wide) so levels of concurrent queries overlap, while
state-mutating frames (Prime, RegisterTemplate, …) serialize behind a
readers-writer state lock.  Driver-side, a per-connection reader thread
matches replies to waiters by id, so :class:`ShardWorkerClient` holds
no lock across a round trip.  On top of that, :class:`RpcShardRouter`
can micro-batch: levels that concurrent queries dispatch to the same
shard within a short window coalesce into one :class:`ExecuteBatch`
frame — one encode/send/recv for many queries — and demultiplex by
sub-request id.  Retries are idempotent: workers answer a repeated
request id from a reply cache instead of executing twice.

The driver side is :class:`RpcShardRouter` — a drop-in
:class:`~repro.cluster.router.ShardRouter` whose level scheduling,
shuffle exchange and :meth:`~repro.mapreduce.counters.ExecutionReport
.merge` accounting are inherited unchanged; only the dispatch hop is
replaced by the protocol.  Worker crashes are detected at the connection
(a typed error reply means the worker is alive and the *request* failed;
a transport error means the worker died): a dead worker is respawned —
re-primed, templates re-registered — and the failed request retried
exactly once; a second failure raises :class:`ShardUnavailable` instead
of deadlocking the service.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import os
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field, replace as dataclass_replace
from multiprocessing.connection import Client, Listener

from repro.analysis.locks import (
    checked,
    note_acquired,
    note_released,
    witness_name_if_enabled,
)
from repro.cluster.router import ShardRouter
from repro.cluster.slots import SlotTable, merge_slots
from repro.cost.params import DEFAULT_PARAMS, CostParams
from repro.mapreduce.backends import (
    BACKEND_NAMES,
    DEFAULT_RPC_PIPELINE,
    ExecutionBackend,
    SerialBackend,
    TaskInvocation,
    make_backend,
    pipeline_workers,
    store_token,
    task_timing,
)
from repro.columnar.wire import WIRE_FORMATS, ColumnarFrame, WireCodec
from repro.mapreduce.hdfs import HDFS, DistributedRelation
from repro.mapreduce.jobs import TaskContext
from repro.obs.trace import (
    SpanAccumulator,
    attach_worker_spans,
    record_remote,
    span,
    trace_ctx,
)
from repro.partitioning.triple_partitioner import StoreSnapshot
from repro.physical.executor import job_from_spec
from repro.physical.job_compiler import compile_plan
from repro.physical.translate import PhysicalPlan, substitute_plan

#: Hard cap on one pickled message frame (request or reply).  Large
#: enough for any realistic exchange payload, small enough that a
#: runaway frame fails typed instead of exhausting memory.
DEFAULT_MAX_FRAME_BYTES = 128 * 1024 * 1024

#: Seconds to wait for a spawned worker to report its listening address.
DEFAULT_SPAWN_TIMEOUT = 60.0

#: Bound plans a shard server keeps resident (LRU).  Templates are one
#: per query *shape* and stay; bound plans are one per constant vector,
#: which an ad-hoc workload can grow without limit — a long-lived server
#: must not.
MAX_BOUND_PLANS = 256

#: Reply payloads a shard server keeps per request id (LRU), so a
#: retried execute frame is answered from the cache instead of running
#: twice.  Small: the retry window is one in-flight request per waiter.
DEDUP_CACHE_SIZE = 64

#: Per-task spans a traced :class:`ExecuteLevel` ships back per level;
#: further tasks are summarized by a ``task_spans_dropped`` attribute on
#: the execute span (levels can hold many tasks and span records travel
#: over the wire).
MAX_TASK_SPANS = 16


# -- typed errors --------------------------------------------------------------


class RpcError(RuntimeError):
    """Base class of every typed RPC-layer error."""


class RpcProtocolError(RpcError):
    """An undecodable frame or unknown message type reached a worker."""


class FrameTooLarge(RpcError):
    """A message frame exceeded ``max_frame_bytes``."""


class TemplateNotRegistered(RpcError):
    """A worker was asked to bind/execute a template it does not hold."""


class WorkerStateError(RpcError):
    """A request arrived in a state the worker cannot serve (e.g. an
    :class:`ExecuteLevel` before any :class:`Prime`)."""


class WorkerSpawnError(RpcError):
    """A shard worker process could not be started or contacted."""


class StaleEpoch(RpcError):
    """An execute frame was stamped with a topology epoch the worker is
    not at: the slot table moved underneath the query.  The driver
    handles it by re-routing the frame's tasks against the current
    table (:meth:`RpcShardRouter._reroute_level`), so a query that
    started before a rebalance still answers correctly after it.
    """

    def __init__(self, shard: int, frame_epoch: int, worker_epoch: int) -> None:
        super().__init__(
            f"shard {shard} is at topology epoch {worker_epoch}, "
            f"frame stamped {frame_epoch}"
        )
        self.shard = shard
        self.frame_epoch = frame_epoch
        self.worker_epoch = worker_epoch

    def __reduce__(self):
        # Multi-argument constructor breaks default exception pickling;
        # errors in this module must survive a pickled hop.
        return (StaleEpoch, (self.shard, self.frame_epoch, self.worker_epoch))


class ShardUnavailable(RuntimeError):
    """A shard worker failed, was respawned once, and failed again.

    The one-retry budget is per request: a crashed worker is restarted
    transparently (snapshot re-primed, templates re-registered) and the
    failed request resent exactly once.  Sustained failure surfaces as
    this typed error — counted in ``snapshot_stats().shard_failures``
    when raised through the query service — rather than a hang.
    """

    def __init__(self, shard: int, message: str) -> None:
        super().__init__(f"shard {shard} unavailable: {message}")
        self.shard = shard
        self.message = message

    def __reduce__(self):
        # The two-argument constructor breaks default exception
        # pickling; errors in this module must survive a pickled hop.
        return (ShardUnavailable, (self.shard, self.message))


#: Connection-level failures that mean "the worker process is gone"
#: (as opposed to a typed error reply, which means the *request* failed
#: on a live worker).  BrokenPipeError/ConnectionError are OSErrors.
_TRANSPORT_ERRORS = (EOFError, OSError)


# -- message frames ------------------------------------------------------------


@dataclass(frozen=True)
class Hello:
    """Handshake / health-check probe."""


@dataclass(frozen=True)
class HelloReply:
    shard: int
    num_nodes: int
    num_shards: int
    pid: int
    snapshot_token: tuple | None


@dataclass(frozen=True)
class Prime:
    """Install (or replace) the worker's resident store snapshot.

    ``wire`` selects the row encoding of subsequent :class:`ExecuteLevel`
    exchanges on this connection: ``"pickle"`` (tuple lists, the
    original format) or ``"columnar"`` (dictionary-encoded id buffers,
    see :mod:`repro.columnar.wire`).  Both ends seed their wire
    dictionaries from this very snapshot, so priming is also the
    synchronization point of the columnar protocol.

    ``epoch`` stamps the slot-table version this snapshot was sliced
    under; the worker adopts it as its topology epoch.
    """

    snapshot: StoreSnapshot
    wire: str = "pickle"
    epoch: int = 0


@dataclass(frozen=True)
class PrimeSlots:
    """Ship a migration delta: only the moved slots' snapshot slice.

    ``adds`` maps incoming node → its partition file map (sliced from
    the destination shard's post-move snapshot driver-side); ``drops``
    lists outgoing nodes this shard no longer owns.  The worker merges
    the delta into its resident snapshot (:func:`repro.cluster.slots
    .merge_slots`) and re-primes its backend — a full :class:`Prime`
    of unmoved data never crosses the wire.  Idempotent: a worker whose
    resident token already equals ``token`` acknowledges without
    re-merging, so the crash-retry path cannot double-apply a delta.
    The topology epoch flips separately (:class:`TableUpdate`), after
    every shard holds its migrated data.
    """

    adds: dict[int, dict[str, tuple]]
    drops: tuple[int, ...]
    token: tuple
    wire: str = "pickle"


@dataclass(frozen=True)
class TableUpdate:
    """Flip the worker's topology epoch (the slot-table version).

    Sent to every surviving shard once a migration's data movement is
    complete; from then on the worker rejects execute frames stamped
    with another epoch (:class:`StaleEpoch`) so a rebalance can never
    silently serve a level against the wrong ownership map.  Idempotent
    and monotone: an epoch at or below the worker's current one is
    acknowledged without effect, so duplicate delivery (crash-retry) is
    harmless.  ``num_shards`` > 0 also updates the worker's view of the
    topology width.
    """

    epoch: int
    num_shards: int = 0


@dataclass(frozen=True)
class InvalidateSnapshot:
    """Drop the resident snapshot (idempotent); a new :class:`Prime`
    must arrive before the next map level."""


@dataclass(frozen=True)
class RegisterTemplate:
    """Ship a template's unbound physical plan, once per worker life."""

    key: str
    physical: PhysicalPlan


@dataclass(frozen=True)
class BoundSpecs:
    """Bind a constant vector into a registered template, worker-side.

    This is all that crosses the wire per query after registration: the
    template key plus ``(placeholder, constant)`` pairs.  The worker
    substitutes and recompiles locally (cached per binding), yielding
    the same job structure the driver compiled.
    """

    key: str
    binding: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True)
class ExecuteLevel:
    """Run one scheduling level's tasks owned by this shard.

    ``phase="map"``: ``tasks`` are ``(job_name, tag, node)`` triples
    (``tag`` is None for map-only jobs) and ``inputs`` carries the
    shard-local slices of shuffled intermediates the level's map chains
    read.  ``phase="reduce"``: ``tasks`` are ``(job_name, partition,
    grouped)`` — the cross-shard exchange rows.  Requests are
    self-contained (no execution state lives on the worker between
    levels), which is what makes respawn-and-retry safe.

    ``trace_ctx`` is the driver's picklable ``(trace_id, span_id)``
    tracing context (:func:`repro.obs.trace.trace_ctx`); None — the
    default, and the wire cost when tracing is off — disables all
    worker-side span accumulation for the frame.

    ``epoch`` stamps the slot-table version the driver routed this
    level under; a worker at another epoch rejects the frame with
    :class:`StaleEpoch` and the driver re-routes against the current
    table, so a concurrent rebalance can never misplace a level.
    """

    key: str
    binding: tuple[tuple[str, str], ...]
    level: int
    phase: str
    tasks: tuple
    inputs: dict[str, DistributedRelation] = field(default_factory=dict)
    trace_ctx: tuple | None = None
    epoch: int = 0


@dataclass(frozen=True)
class ExecuteBatch:
    """Several queries' :class:`ExecuteLevel` s for one shard, coalesced
    into a single frame.

    ``items`` pairs each level with the sub-request id its reply
    demultiplexes under in the :class:`BatchReply`.  The batch shares
    one encode/send/recv (and, columnar, one dictionary delta) across
    its members; each member executes independently worker-side, so one
    failing level yields a per-item :class:`ErrorReply`, never poisons
    its neighbours.
    """

    items: tuple = ()


@dataclass(frozen=True)
class BatchReply:
    """Per-item replies of one :class:`ExecuteBatch`: ``(sub_request_id,
    ResultsReply | ErrorReply)`` pairs, in item order."""

    replies: tuple = ()


@dataclass(frozen=True)
class Stats:
    """Read the worker's counters (idempotent)."""


@dataclass(frozen=True)
class StatsReply:
    shard: int
    pid: int
    snapshot_token: tuple | None
    templates: int
    bound_instances: int
    tasks_run: int
    levels_run: int
    primes: int
    bytes_received: int
    backend: str
    warnings: tuple[str, ...]
    #: dispatch-pool size: how many levels may execute concurrently
    pipeline: int = 1
    #: levels currently executing / accepted but not yet started
    inflight: int = 0
    queue_depth: int = 0
    #: high-water mark of ``inflight`` over the worker's life
    peak_inflight: int = 0
    #: ExecuteBatch frames served / duplicate request ids answered
    #: from the dedup cache (or dropped while still in flight)
    batches: int = 0
    deduped: int = 0


@dataclass(frozen=True)
class Shutdown:
    """Stop serving and exit (replied to before the worker exits)."""


@dataclass(frozen=True)
class OkReply:
    value: object = None


@dataclass(frozen=True)
class ResultsReply:
    """Task results of one :class:`ExecuteLevel`, in task order.

    ``spans`` carries the worker's span records for a traced frame
    (:class:`repro.obs.trace.SpanAccumulator` tuples, offsets relative
    to the worker's frame receipt); empty when tracing is off.
    """

    results: list
    spans: tuple = ()


@dataclass(frozen=True)
class ErrorReply:
    """A request failed on a live worker; carries the typed exception."""

    error: BaseException
    kind: str = ""


@dataclass(frozen=True)
class Request:
    """The envelope every driver→worker frame travels in: a connection-
    unique ``id`` the reply is matched back under, plus the message
    itself (possibly a :class:`ColumnarFrame` wrapping it)."""

    id: int
    msg: object


@dataclass(frozen=True)
class Reply:
    """The worker→driver envelope.  ``id`` echoes the request's; the
    reserved id ``-1`` is a connection-level broadcast (the worker could
    not attribute the failure to a request — e.g. an undecodable or
    oversized incoming frame), which fails every in-flight waiter.

    ``encode_s`` reports the worker's payload-encode time (columnar
    transcode) for traced frames.  It lives on the envelope because a
    span *inside* the payload cannot time the encoding of that same
    payload; the envelope pickle itself stays untimed (≈0 on the
    pickle wire), which is documented behaviour."""

    id: int
    payload: object
    encode_s: float = 0.0


#: All frame types, for protocol round-trip tests.
MESSAGE_TYPES = (
    Hello,
    HelloReply,
    Prime,
    PrimeSlots,
    TableUpdate,
    InvalidateSnapshot,
    RegisterTemplate,
    BoundSpecs,
    ExecuteLevel,
    ExecuteBatch,
    Stats,
    StatsReply,
    Shutdown,
    OkReply,
    ResultsReply,
    BatchReply,
    ErrorReply,
    Request,
    Reply,
    ColumnarFrame,
)

#: The worker dispatch table (FRAME001): frames the worker main loop or
#: :func:`_dispatch` accepts.  A frame added to :data:`MESSAGE_TYPES`
#: without an entry here (or in :data:`CLIENT_HANDLED`) is a lint error,
#: and the main loop rejects frames outside this table with a typed
#: protocol error instead of an arbitrary failure mid-dispatch.
WORKER_HANDLED = (
    Hello,
    Prime,
    PrimeSlots,
    TableUpdate,
    InvalidateSnapshot,
    RegisterTemplate,
    BoundSpecs,
    ExecuteLevel,
    ExecuteBatch,
    Stats,
    Shutdown,
    Request,
    ColumnarFrame,
)

#: Frames only ever decoded on the driver side (replies + envelope).
CLIENT_HANDLED = (
    HelloReply,
    OkReply,
    ResultsReply,
    BatchReply,
    StatsReply,
    ErrorReply,
    Reply,
)


def plan_key(physical: PhysicalPlan) -> str:
    """Content digest of a physical plan, used as its registry key.

    Computed once per template at registration and carried on every
    bound :class:`~repro.physical.executor.PreparedPlan`, so it only
    needs to be stable within one driver process.
    """
    return hashlib.sha1(pickle.dumps(physical)).hexdigest()[:16]


# -- the worker process --------------------------------------------------------


class _BoundPlan:
    """A template bound worker-side: compiled jobs plus spec lookup."""

    def __init__(
        self, physical: PhysicalPlan, binding: tuple, num_nodes: int
    ) -> None:
        bound = substitute_plan(physical, dict(binding)) if binding else physical
        self.compiled = compile_plan(bound)
        self._map: dict[tuple, object] = {}
        self._reduce: dict[str, object] = {}
        for spec in self.compiled.jobs:
            job = job_from_spec(spec, num_nodes)
            for task in job.map_tasks:
                tag = getattr(task.spec, "tag", None)
                self._map[(spec.name, tag, task.node)] = task.spec
            if job.reduce_spec is not None:
                self._reduce[spec.name] = job.reduce_spec

    def map_spec(self, job: str, tag, node: int):
        try:
            return self._map[(job, tag, node)]
        except KeyError:
            raise WorkerStateError(
                f"no map task ({job!r}, tag={tag}, node={node}) in bound plan"
            ) from None

    def reduce_spec(self, job: str):
        try:
            return self._reduce[job]
        except KeyError:
            raise WorkerStateError(f"job {job!r} has no reduce spec") from None


class _StateRWLock:
    """Writer-preferring readers-writer lock over worker resident state:
    ExecuteLevels share it (readers run concurrently on the dispatch
    pool), while Prime / InvalidateSnapshot / RegisterTemplate take it
    exclusively, so a snapshot or template swap never interleaves with a
    running level."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._waiting_writers = 0
        # Lock-order witness node (REPRO_LOCK_CHECK=1); the internal
        # _cond is deliberately not witnessed — it is held only for the
        # bookkeeping instants, never across user code.
        self._witness = witness_name_if_enabled("_WorkerState.rwlock")

    @contextmanager
    def read(self):
        with self._cond:
            while self._writer or self._waiting_writers:
                self._cond.wait()
            self._readers += 1
        if self._witness:
            note_acquired(self._witness)
        try:
            yield
        finally:
            if self._witness:
                note_released(self._witness)
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            self._waiting_writers += 1
            while self._writer or self._readers:
                self._cond.wait()
            self._waiting_writers -= 1
            self._writer = True
        if self._witness:
            note_acquired(self._witness)
        try:
            yield
        finally:
            if self._witness:
                note_released(self._witness)
            with self._cond:
                self._writer = False
                self._cond.notify_all()


class _WorkerState:
    """Everything resident in one shard server process.

    With a dispatch pool (``pipeline > 1``) levels execute on several
    threads at once: resident-state swaps serialize behind
    :attr:`rwlock`, the bound-plan LRU behind its own mutex, and every
    counter behind the stats mutex."""

    def __init__(
        self,
        shard: int,
        num_nodes: int,
        num_shards: int,
        backend: str,
        backend_workers: int | None,
        pipeline: int = 1,
    ) -> None:
        self.shard = shard
        self.num_nodes = num_nodes
        self.num_shards = num_shards
        self.backend_name = backend
        self.pipeline = pipeline
        self.warnings: list[str] = []
        self.backend: ExecutionBackend = make_backend(
            backend,
            num_workers=pipeline_workers(backend, backend_workers, pipeline),
            on_fallback=self.warnings.append,
        )
        # snapshot/wire are resident-state: swapped only under
        # rwlock.write() (the caller's mutator path), read during level
        # execution under rwlock.read() — the RW lock, not a mutex,
        # because reads are long (whole levels) and concurrent.
        self.snapshot: StoreSnapshot | None = None
        #: columnar wire codec of this connection; None = pickle wire
        self.wire: WireCodec | None = None
        #: topology epoch (slot-table version) — resident-state like
        #: snapshot/wire: flipped only under rwlock.write() (Prime /
        #: TableUpdate), read per execute frame under rwlock.read()
        self.epoch = 0
        self.rwlock = _StateRWLock()
        self._bound_lock = checked(threading.Lock(), "_WorkerState._bound_lock")
        self._stats_lock = checked(threading.Lock(), "_WorkerState._stats_lock")
        self.templates: dict[str, PhysicalPlan] = {}  # guarded-by: _bound_lock
        self.bound: dict[tuple, _BoundPlan] = {}  # guarded-by: _bound_lock
        self.tasks_run = 0  # guarded-by: _stats_lock
        self.levels_run = 0  # guarded-by: _stats_lock
        self.primes = 0  # guarded-by: _stats_lock
        self.bytes_received = 0  # guarded-by: _stats_lock
        self.queued = 0  # guarded-by: _stats_lock
        self.inflight = 0  # guarded-by: _stats_lock
        self.peak_inflight = 0  # guarded-by: _stats_lock
        self.batches = 0  # guarded-by: _stats_lock
        self.deduped = 0  # guarded-by: _stats_lock

    # -- telemetry gauges --------------------------------------------------

    def note_bytes(self, n: int) -> None:
        with self._stats_lock:
            self.bytes_received += n

    def note_queued(self, n: int) -> None:
        with self._stats_lock:
            self.queued += n

    def note_batch(self) -> None:
        with self._stats_lock:
            self.batches += 1

    def note_dedup(self) -> None:
        with self._stats_lock:
            self.deduped += 1

    def idle(self) -> bool:
        """True when nothing executes or waits besides the one request
        the caller just queued (the inline fast-path predicate)."""
        with self._stats_lock:
            return self.queued <= 1 and self.inflight == 0

    def begin_execute(self) -> None:
        with self._stats_lock:
            self.queued -= 1
            self.inflight += 1
            self.peak_inflight = max(self.peak_inflight, self.inflight)

    def end_execute(self) -> None:
        with self._stats_lock:
            self.inflight -= 1

    # -- state transitions -------------------------------------------------

    @property
    def token(self) -> tuple | None:
        return None if self.snapshot is None else store_token(self.snapshot)

    def install_snapshot(self, snapshot: StoreSnapshot, wire: str = "pickle") -> tuple:
        self.snapshot = snapshot
        # Re-seed the wire codec: the driver does the same from the very
        # snapshot object it just sent, so both ends assign identical ids
        # to every resident term and the delta watermarks restart in sync.
        self.wire = WireCodec(snapshot) if wire == "columnar" else None
        with self._stats_lock:
            self.primes += 1
        # Revalidate the local backend against the new snapshot token: a
        # process pool keyed to the old token rebuilds, anything else is
        # a no-op — the same mutation protocol as the in-proc deployment.
        self.backend.prime(
            TaskContext(num_nodes=self.num_nodes, store=snapshot)
        )
        return snapshot.token

    def register(self, key: str, physical: PhysicalPlan) -> bool:
        with self._bound_lock:
            new = key not in self.templates
            self.templates[key] = physical
            if not new:
                # Re-registration replaces the plan; drop stale bindings.
                self.bound = {
                    k: v for k, v in self.bound.items() if k[0] != key
                }
            return new

    def bound_for(self, key: str, binding: tuple) -> _BoundPlan:
        with self._bound_lock:
            cached = self.bound.get((key, binding))
            if cached is None:
                physical = self.templates.get(key)
                if physical is None:
                    raise TemplateNotRegistered(
                        f"shard {self.shard} holds no template {key!r}"
                    )
                cached = _BoundPlan(physical, binding, self.num_nodes)
                self.bound[(key, binding)] = cached
                while len(self.bound) > MAX_BOUND_PLANS:
                    # LRU eviction: a constant-varying workload must not
                    # grow a long-lived server without bound.  Evicted
                    # bindings rebind on demand from the resident
                    # template.
                    self.bound.pop(next(iter(self.bound)))
            else:
                # Move-to-end marks the binding recently used.
                self.bound.pop((key, binding))
                self.bound[(key, binding)] = cached
            return cached

    # -- request handlers --------------------------------------------------

    def execute_level(
        self, msg: ExecuteLevel, acc: SpanAccumulator | None = None
    ) -> ResultsReply:
        if msg.epoch != self.epoch:
            raise StaleEpoch(self.shard, msg.epoch, self.epoch)
        if acc is None:
            return self._execute_level(msg)
        with acc.timed("bind"):
            bound = self.bound_for(msg.key, msg.binding)
        invocations, ctx = self._invocations(msg, bound)
        start = time.perf_counter()
        with task_timing() as tasks:
            results = self.backend.run(invocations, ctx)
        end = time.perf_counter()
        execute_ix = acc.record(
            "execute", start, end, tasks=len(invocations)
        )
        # Ship at most a handful of per-task spans: serial/columnar
        # backends report them; a level can hold many tasks and the
        # records travel back over the wire.
        for task_ix, (t0, t1) in enumerate(tasks[:MAX_TASK_SPANS]):
            acc.record("task", t0, t1, parent=execute_ix, index=task_ix)
        if len(tasks) > MAX_TASK_SPANS:
            acc.records[execute_ix][4]["task_spans_dropped"] = (
                len(tasks) - MAX_TASK_SPANS
            )
        with self._stats_lock:
            self.tasks_run += len(invocations)
            self.levels_run += 1
        return ResultsReply(results=list(results), spans=acc.packed())

    def _execute_level(self, msg: ExecuteLevel) -> ResultsReply:
        bound = self.bound_for(msg.key, msg.binding)
        invocations, ctx = self._invocations(msg, bound)
        results = self.backend.run(invocations, ctx)
        with self._stats_lock:
            self.tasks_run += len(invocations)
            self.levels_run += 1
        return ResultsReply(results=list(results))

    def _invocations(
        self, msg: ExecuteLevel, bound: _BoundPlan
    ) -> tuple[list[TaskInvocation], TaskContext]:
        if msg.phase == "map":
            if self.snapshot is None:
                raise WorkerStateError(
                    f"shard {self.shard} has no snapshot primed"
                )
            ctx = TaskContext(
                num_nodes=self.num_nodes,
                store=self.snapshot,
                hdfs=HDFS(num_nodes=self.num_nodes, files=dict(msg.inputs)),
            )
            invocations = [
                TaskInvocation(bound.map_spec(job, tag, node))
                for job, tag, node in msg.tasks
            ]
        elif msg.phase == "reduce":
            ctx = TaskContext(num_nodes=self.num_nodes, store=self.snapshot)
            invocations = [
                TaskInvocation(bound.reduce_spec(job), (partition, grouped))
                for job, partition, grouped in msg.tasks
            ]
        else:
            raise RpcProtocolError(f"unknown ExecuteLevel phase {msg.phase!r}")
        return invocations, ctx

    def stats(self) -> StatsReply:
        # Registry sizes are owned by _bound_lock; read them first so
        # the two leaf mutexes are never held together.
        with self._bound_lock:
            templates = len(self.templates)
            bound_instances = len(self.bound)
        with self._stats_lock:
            return StatsReply(
                shard=self.shard,
                pid=os.getpid(),
                snapshot_token=self.token,
                templates=templates,
                bound_instances=bound_instances,
                tasks_run=self.tasks_run,
                levels_run=self.levels_run,
                primes=self.primes,
                bytes_received=self.bytes_received,
                backend=self.backend_name,
                warnings=tuple(self.warnings),
                pipeline=self.pipeline,
                inflight=self.inflight,
                queue_depth=self.queued,
                peak_inflight=self.peak_inflight,
                batches=self.batches,
                deduped=self.deduped,
            )

    def close(self) -> None:
        try:
            self.backend.close()
        except Exception:
            pass


def _dispatch(state: _WorkerState, msg: object):
    """Map one decoded request frame to its reply (raises typed errors)."""
    if isinstance(msg, Hello):
        return HelloReply(
            shard=state.shard,
            num_nodes=state.num_nodes,
            num_shards=state.num_shards,
            pid=os.getpid(),
            snapshot_token=state.token,
        )
    if isinstance(msg, Prime):
        token = state.install_snapshot(msg.snapshot, msg.wire)
        state.epoch = msg.epoch
        return OkReply(token)
    if isinstance(msg, PrimeSlots):
        if state.snapshot is None:
            raise WorkerStateError(
                f"shard {state.shard} has no resident snapshot to merge "
                "a slot delta into"
            )
        if state.token == msg.token:
            # Duplicate delivery (crash-retry): already merged.
            return OkReply(msg.token)
        merged = merge_slots(state.snapshot, msg.adds, msg.drops, msg.token)
        return OkReply(state.install_snapshot(merged, msg.wire))
    if isinstance(msg, TableUpdate):
        # >= not >: a freshly-spawned shard is Primed already *at* the
        # new epoch and still needs the broadcast's num_shards; equal-
        # epoch re-delivery is a no-op either way (idempotent).
        if msg.epoch >= state.epoch:
            state.epoch = msg.epoch
            if msg.num_shards:
                state.num_shards = msg.num_shards
        return OkReply(state.epoch)
    if isinstance(msg, InvalidateSnapshot):
        state.snapshot = None
        return OkReply(None)
    if isinstance(msg, RegisterTemplate):
        return OkReply(state.register(msg.key, msg.physical))
    if isinstance(msg, BoundSpecs):
        state.bound_for(msg.key, msg.binding)
        return OkReply((msg.key, msg.binding))
    if isinstance(msg, ExecuteLevel):
        return state.execute_level(msg)
    if isinstance(msg, Stats):
        return state.stats()
    raise RpcProtocolError(f"unknown message type {type(msg).__name__!r}")


def _as_error_reply(exc: BaseException) -> ErrorReply:
    return ErrorReply(error=exc, kind=type(exc).__name__)


def _reply_payload(rid: int, reply, encode_s: float = 0.0) -> bytes:
    """Pickle one :class:`Reply` envelope, degrading to a string-only
    error when the payload itself does not pickle."""
    try:
        return pickle.dumps(Reply(rid, reply, encode_s))
    except Exception as exc:
        source = reply.error if isinstance(reply, ErrorReply) else exc
        return pickle.dumps(
            Reply(
                rid,
                ErrorReply(
                    error=RpcError(f"{type(source).__name__}: {source}"),
                    kind=type(source).__name__,
                ),
            )
        )


class _BatchAggregate:
    """Collects one :class:`ExecuteBatch`'s per-item replies as pool
    tasks finish; the task completing the batch sends the reply."""

    def __init__(self, rid: int, count: int) -> None:
        self.rid = rid
        self.replies: list = [None] * count
        self._remaining = count
        self._lock = checked(threading.Lock(), "_BatchAggregate._lock")

    def finish(self, index: int, sub_rid: int, reply) -> bool:
        with self._lock:
            self.replies[index] = (sub_rid, reply)
            self._remaining -= 1
            return self._remaining == 0


def _worker_main(
    channel,
    shard: int,
    num_nodes: int,
    num_shards: int,
    backend: str,
    backend_workers: int | None,
    max_frame_bytes: int,
    authkey: bytes,
    pipeline: int = 1,
) -> None:
    """Entry point of a shard server process.

    Binds a localhost listener, reports the bound address back through
    *channel*, then serves its single router connection until Shutdown,
    EOF (driver died) or an unrecoverable frame error.

    The loop is accept-dispatch: the main thread is the connection's
    only reader — it decodes frames in arrival order (the columnar
    dictionary replay requires that) and hands ``ExecuteLevel`` /
    ``ExecuteBatch`` work to a dispatch pool of up to *pipeline*
    threads, so levels of concurrent queries overlap.  Every other
    frame is served inline; state mutators behind the write side of the
    state lock.  Replies carry the request id of their envelope, and
    reply *encoding* happens under the send lock so encode order equals
    send order — the invariant the columnar delta watermark needs.
    Execute replies are cached per request id: a retried frame is
    answered from the cache, never run twice.
    """
    listener = Listener(("127.0.0.1", 0), authkey=bytes(authkey))
    try:
        channel.send(listener.address)
    finally:
        channel.close()
    concurrency = max(1, pipeline)
    state = _WorkerState(
        shard, num_nodes, num_shards, backend, backend_workers,
        pipeline=concurrency,
    )
    conn = listener.accept()
    send_lock = checked(threading.Lock(), "worker.send_lock")
    pool = (
        ThreadPoolExecutor(
            max_workers=concurrency,
            thread_name_prefix=f"repro-shard{shard}-exec",
        )
        if concurrency > 1
        else None
    )
    dedup_lock = checked(threading.Lock(), "worker.dedup_lock")
    dedup_done: OrderedDict[int, bytes] = OrderedDict()
    dedup_inflight: set[int] = set()

    def dedup_check(rid: int):
        """None = fresh (now marked in flight); bytes = already answered
        (resend verbatim); "inflight" = executing right now (drop — the
        original execution will reply)."""
        with dedup_lock:
            cached = dedup_done.get(rid)
            if cached is not None:
                state.note_dedup()
                return cached
            if rid in dedup_inflight:
                state.note_dedup()
                return "inflight"
            dedup_inflight.add(rid)
            return None

    def dedup_finish(rid: int, payload: bytes | None) -> None:
        with dedup_lock:
            dedup_inflight.discard(rid)
            if payload is not None:
                dedup_done[rid] = payload
                while len(dedup_done) > DEDUP_CACHE_SIZE:
                    dedup_done.popitem(last=False)

    def send_error(rid: int, exc: BaseException) -> None:
        with send_lock:
            try:
                conn.send_bytes(_reply_payload(rid, _as_error_reply(exc)))
            except Exception:
                pass

    def send_reply(rid: int, reply) -> bytes | None:
        """Columnar-encode (when applicable), envelope, cap-check and
        send one reply; returns the payload actually written (for the
        dedup cache) or None when the connection is gone.  The delta
        watermark advances only once the frame is written (an unsent
        delta is simply re-shipped — merge_entries is idempotent, so
        over-shipping is safe, gaps are not)."""
        with send_lock:
            out, commit, encode_s = reply, None, 0.0
            if state.wire is not None and isinstance(
                reply, (ResultsReply, BatchReply)
            ):
                try:
                    t0 = time.perf_counter()
                    out, commit = state.wire.encode_payload(reply)
                    encode_s = time.perf_counter() - t0
                except BaseException as exc:
                    out, commit, encode_s = _as_error_reply(exc), None, 0.0
            payload = _reply_payload(rid, out, encode_s)
            if len(payload) > max_frame_bytes:
                payload = _reply_payload(
                    rid,
                    ErrorReply(
                        error=FrameTooLarge(
                            f"reply frame of {len(payload)} bytes exceeds "
                            f"the {max_frame_bytes}-byte cap"
                        ),
                        kind="FrameTooLarge",
                    ),
                )
                commit = None
            try:
                conn.send_bytes(payload)
            except Exception:
                return None
            if commit is not None:
                commit()
            return payload

    def run_item(level: ExecuteLevel, received: float):
        """Execute one level under the read lock; errors become typed
        per-item replies, never thread deaths.  *received* is the
        frame-receipt instant — the worker-side t0 every traced span
        offset is relative to (queue wait = receipt to start)."""
        state.begin_execute()
        acc = None
        if level.trace_ctx is not None:
            acc = SpanAccumulator(received)
            acc.record("queue_wait", received, time.perf_counter())
        try:
            lock_t0 = time.perf_counter()
            with state.rwlock.read():
                if acc is not None:
                    acc.record(
                        "state_lock_wait", lock_t0, time.perf_counter()
                    )
                try:
                    return state.execute_level(level, acc)
                except BaseException as exc:
                    return _as_error_reply(exc)
        finally:
            state.end_execute()

    def run_level(rid: int, msg: ExecuteLevel, received: float) -> None:
        reply = run_item(msg, received)
        dedup_finish(rid, send_reply(rid, reply))

    def run_batch_item(
        agg: _BatchAggregate, index: int, sub_rid: int, level, received: float
    ) -> None:
        if agg.finish(index, sub_rid, run_item(level, received)):
            reply = BatchReply(replies=tuple(agg.replies))
            dedup_finish(agg.rid, send_reply(agg.rid, reply))

    def run_batch(rid: int, msg: ExecuteBatch, received: float) -> None:
        state.note_batch()
        items = tuple(msg.items)
        if not items:
            dedup_finish(rid, send_reply(rid, BatchReply(replies=())))
            return
        if pool is None:
            replies = tuple(
                (sub_rid, run_item(level, received))
                for sub_rid, level in items
            )
            dedup_finish(rid, send_reply(rid, BatchReply(replies=replies)))
            return
        # Items are dispatched as sibling pool tasks (never nested
        # submissions, which could deadlock a full pool); the last one
        # to finish sends the combined reply.
        agg = _BatchAggregate(rid, len(items))
        for index, (sub_rid, level) in enumerate(items):
            pool.submit(run_batch_item, agg, index, sub_rid, level, received)

    try:
        while True:
            try:
                data = conn.recv_bytes(max_frame_bytes)
            except EOFError:
                break
            except OSError:
                # Oversized frame (recv_bytes over maxlength) or a broken
                # pipe; the inbound stream is unusable either way — the
                # failure cannot be attributed to a request id, so
                # broadcast it, then stop serving.
                send_error(
                    -1,
                    FrameTooLarge(
                        f"request frame exceeded {max_frame_bytes} "
                        "bytes (or the connection broke mid-frame)"
                    ),
                )
                break
            received = time.perf_counter()
            state.note_bytes(len(data))
            try:
                envelope = pickle.loads(data)
            except Exception as exc:
                send_error(
                    -1, RpcProtocolError(f"undecodable frame: {exc!r}")
                )
                continue
            if not isinstance(envelope, Request):
                send_error(
                    -1,
                    RpcProtocolError(
                        "expected a Request envelope, got "
                        f"{type(envelope).__name__!r}"
                    ),
                )
                continue
            rid, msg = envelope.id, envelope.msg
            if not isinstance(msg, WORKER_HANDLED):
                send_error(
                    rid,
                    RpcProtocolError(
                        f"unknown message type {type(msg).__name__!r}: "
                        "not in the worker dispatch table"
                    ),
                )
                continue
            if isinstance(msg, Shutdown):
                if pool is not None:
                    pool.shutdown(wait=True)  # drain in-flight levels
                with send_lock:
                    try:
                        conn.send_bytes(_reply_payload(rid, OkReply("bye")))
                    except Exception:
                        pass
                break
            is_execute = isinstance(
                msg, (ExecuteLevel, ExecuteBatch, ColumnarFrame)
            )
            if is_execute:
                prior = dedup_check(rid)
                if prior == "inflight":
                    continue
                if prior is not None:
                    with send_lock:
                        try:
                            conn.send_bytes(prior)
                        except Exception:
                            pass
                    continue
            try:
                if isinstance(msg, ColumnarFrame):
                    if state.wire is None:
                        raise WorkerStateError(
                            "columnar frame received but no columnar "
                            "Prime established a wire codec"
                        )
                    msg = state.wire.decode_frame(msg)
                if isinstance(msg, ExecuteLevel):
                    state.note_queued(1)
                    if pool is None or (state.idle() and not conn.poll(0)):
                        # Fast path: the worker is idle and nothing else
                        # waits on the socket, so run on the recv thread
                        # and skip the pool hop (a lone query's
                        # per-level latency tax).  At worst a request
                        # arriving mid-level waits one level before the
                        # loop resumes dispatching to the pool.
                        run_level(rid, msg, received)
                    else:
                        pool.submit(run_level, rid, msg, received)
                    continue
                if isinstance(msg, ExecuteBatch):
                    state.note_queued(len(msg.items))
                    run_batch(rid, msg, received)
                    continue
                if isinstance(
                    msg,
                    (
                        Prime,
                        PrimeSlots,
                        TableUpdate,
                        InvalidateSnapshot,
                        RegisterTemplate,
                    ),
                ):
                    # Mutators wait out in-flight levels, exclusively.
                    with state.rwlock.write():
                        reply = _dispatch(state, msg)
                else:
                    with state.rwlock.read():
                        reply = _dispatch(state, msg)
            except BaseException as exc:  # typed error replies, not death
                if is_execute:
                    dedup_finish(rid, None)
                send_error(rid, exc)
                continue
            send_reply(rid, reply)
    finally:
        if pool is not None:
            pool.shutdown(wait=False)
        state.close()
        try:
            conn.close()
        finally:
            listener.close()


# -- the driver-side worker handle ---------------------------------------------


def _spawn_context():
    """Fork where available (workers receive their snapshot over the
    socket, so fork buys only startup speed), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class _Waiter:
    """One in-flight request's completion slot in the futures table.

    ``encode_s`` relays the worker's reply-encode time (from the
    :class:`Reply` envelope) alongside the payload for traced calls.
    """

    __slots__ = ("_event", "_value", "_error", "encode_s")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value = None
        self._error: BaseException | None = None
        self.encode_s = 0.0

    def resolve(self, value) -> None:
        self._value = value
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def wait(self):
        self._event.wait()
        if self._error is not None:
            raise self._error
        return self._value


class ShardWorkerClient:
    """Driver-side handle on one shard server process.

    Owns the process and the authenticated socket connection, and
    multiplexes it: requests are stamped with a connection-unique id and
    sent under a lock held only across encode+send; a per-connection
    reader thread matches replies back to waiters by id.  Concurrent
    callers therefore interleave on one socket instead of serializing
    behind a round-trip lock.  ``pipeline=0`` restores the old strictly
    serial request-response discipline (one outstanding request at a
    time) — the baseline the multiplexed mode is benchmarked against.
    """

    def __init__(
        self,
        shard: int,
        num_nodes: int,
        num_shards: int,
        backend: str = "serial",
        backend_workers: int | None = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        start_method: str | None = None,
        spawn_timeout: float = DEFAULT_SPAWN_TIMEOUT,
        pipeline: int = DEFAULT_RPC_PIPELINE,
    ) -> None:
        self.shard = shard
        self.num_nodes = num_nodes
        self.num_shards = num_shards
        self.backend = backend
        self.backend_workers = backend_workers
        self.max_frame_bytes = max_frame_bytes
        self.start_method = start_method
        self.spawn_timeout = spawn_timeout
        self.pipeline = pipeline
        # process/conn are swapped to None under _close_lock on close;
        # the send/request paths re-read them under their own locks and
        # treat None as "worker gone" (ConnectionError), so a torn read
        # is impossible and a stale non-None at worst fails the send.
        self.process = None
        self.conn = None
        self._send_lock = checked(threading.Lock(), "ShardWorkerClient._send_lock")
        self._close_lock = checked(threading.Lock(), "ShardWorkerClient._close_lock")
        self._waiters_lock = checked(
            threading.Lock(), "ShardWorkerClient._waiters_lock"
        )
        self.bytes_sent = 0  # guarded-by: _send_lock
        self.frames_sent = 0  # guarded-by: _send_lock
        #: driver end of the columnar wire codec; established by the
        #: first successful ``Prime(wire="columnar")`` on this connection
        #: (a quiescence point: no concurrent frame straddles the swap)
        self.codec: WireCodec | None = None
        #: snapshot token last primed onto this worker (driver-side view)
        self.primed_token: tuple | None = None
        #: topology epoch last stamped onto this worker (via Prime or
        #: TableUpdate); -1 = never synced
        self.primed_epoch = -1
        #: worker warnings already relayed to the router's on_warning
        self.warnings_forwarded = 0
        self._waiters: dict[int, _Waiter] = {}  # guarded-by: _waiters_lock
        self._reader_dead: BaseException | None = None  # guarded-by: _waiters_lock
        self._ids = itertools.count(1)  # guarded-by: _waiters_lock
        self._reader: threading.Thread | None = None
        self._serial_lock = (
            checked(threading.Lock(), "ShardWorkerClient._serial_lock")
            if pipeline == 0
            else None
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> HelloReply:
        """Spawn the server process, connect, and health-check it."""
        ctx = (
            multiprocessing.get_context(self.start_method)
            if self.start_method
            else _spawn_context()
        )
        authkey = os.urandom(16)
        parent, child = ctx.Pipe()
        process = ctx.Process(
            target=_worker_main,
            args=(
                child,
                self.shard,
                self.num_nodes,
                self.num_shards,
                self.backend,
                self.backend_workers,
                self.max_frame_bytes,
                authkey,
                self.pipeline,
            ),
            name=f"repro-shard-{self.shard}",
        )
        try:
            process.start()
        except Exception as exc:
            raise WorkerSpawnError(
                f"could not start shard {self.shard} worker: {exc!r}"
            ) from exc
        child.close()
        try:
            if not parent.poll(self.spawn_timeout):
                raise WorkerSpawnError(
                    f"shard {self.shard} worker did not report an address "
                    f"within {self.spawn_timeout}s"
                )
            address = parent.recv()
            conn = Client(address, authkey=authkey)
        except WorkerSpawnError:
            self._reap(process)
            raise
        except Exception as exc:
            self._reap(process)
            raise WorkerSpawnError(
                f"could not connect to shard {self.shard} worker: {exc!r}"
            ) from exc
        finally:
            parent.close()
        self.process = process
        self.conn = conn
        with self._waiters_lock:
            self._reader_dead = None
        self._reader = threading.Thread(
            target=self._read_loop,
            args=(conn,),
            name=f"repro-shard-{self.shard}-reader",
            daemon=True,
        )
        self._reader.start()
        return self.request(Hello())

    def alive(self) -> bool:
        return (
            self.process is not None
            and self.process.is_alive()
            and self.conn is not None
        )

    @staticmethod
    def _reap(process) -> None:
        try:
            if process.is_alive():
                process.terminate()
            process.join(timeout=5)
            if process.is_alive():
                process.kill()
                process.join(timeout=5)
        except Exception:
            pass

    def close(self, kill: bool = False) -> None:
        """Shut the worker down (gracefully unless *kill*); idempotent."""
        with self._close_lock:
            conn, self.conn = self.conn, None
            process, self.process = self.process, None
        reader = self._reader
        if conn is not None:
            if not kill:
                try:
                    with self._send_lock:
                        conn.send_bytes(
                            pickle.dumps(Request(0, Shutdown()))
                        )
                except Exception:
                    pass
                # The worker drains its pool, says bye (rid 0 — no
                # waiter, dropped) and closes; the reader sees EOF.
                if reader is not None:
                    reader.join(timeout=5)
            try:
                conn.close()
            except Exception:
                pass
        if reader is not None and reader is not threading.current_thread():
            reader.join(timeout=5)
        if process is not None:
            process.join(timeout=5)
            self._reap(process)

    # -- requests ----------------------------------------------------------

    def _read_loop(self, conn) -> None:
        """The connection's only reader: decodes replies in arrival
        order (the columnar dictionary replay requires that) and
        resolves the waiter the reply's id names.  A broadcast (id -1)
        fails every in-flight waiter but keeps reading; a transport
        error fails them and ends the loop — the next request raises a
        ConnectionError and the router's respawn path takes over."""
        try:
            while True:
                data = conn.recv_bytes(self.max_frame_bytes)
                reply = pickle.loads(data)
                if not isinstance(reply, Reply):
                    continue
                payload = reply.payload
                if isinstance(payload, ColumnarFrame):
                    codec = self.codec
                    if codec is None:
                        raise RpcProtocolError(
                            f"shard {self.shard} sent a columnar frame "
                            "on a pickle connection"
                        )
                    payload = codec.decode_frame(payload)
                if reply.id == -1:
                    error = (
                        payload.error
                        if isinstance(payload, ErrorReply)
                        else RpcProtocolError(
                            f"shard {self.shard} broadcast an unexpected "
                            f"{type(payload).__name__!r}"
                        )
                    )
                    self._fail_pending(error, terminal=False)
                    continue
                with self._waiters_lock:
                    waiter = self._waiters.pop(reply.id, None)
                if waiter is not None:
                    waiter.encode_s = reply.encode_s
                    waiter.resolve(payload)
                # Unknown ids are replies whose waiter gave up: dropped.
        except BaseException as exc:
            self._fail_pending(exc, terminal=True)

    def _fail_pending(self, error: BaseException, terminal: bool = True) -> None:
        with self._waiters_lock:
            if terminal:
                self._reader_dead = error
            waiters, self._waiters = dict(self._waiters), {}
        for waiter in waiters.values():
            waiter.fail(error)

    def request(self, msg, on_bytes=None, on_encode=None):
        """One request/reply exchange; raises the typed error a worker
        replied with, or a transport error when the worker is gone.

        Thread-safe: the send lock is held only across encode + send
        (on a columnar connection ``ExecuteLevel`` / ``ExecuteBatch``
        requests are transcoded under it — encode order equals send
        order, which the dictionary-delta watermark protocol relies
        on); the reply is awaited outside every lock, so concurrent
        requests pipeline on the socket.

        ``on_encode`` (like ``on_bytes``) is called after a successful
        exchange with the worker's reply-encode seconds from the
        :class:`Reply` envelope — the only place that timing can live,
        since a span inside the payload cannot time its own encoding.
        """
        if self._serial_lock is not None:
            with self._serial_lock:
                return self._request(msg, on_bytes, on_encode)
        return self._request(msg, on_bytes, on_encode)

    def _request(self, msg, on_bytes=None, on_encode=None):
        waiter = _Waiter()
        with self._waiters_lock:
            if self.conn is None:
                raise ConnectionError(
                    f"shard {self.shard} worker is not running"
                )
            if self._reader_dead is not None:
                raise ConnectionError(
                    f"shard {self.shard} connection lost: "
                    f"{self._reader_dead!r}"
                )
            rid = next(self._ids)
            self._waiters[rid] = waiter
        try:
            with self._send_lock:
                conn = self.conn
                if conn is None:
                    raise ConnectionError(
                        f"shard {self.shard} worker is not running"
                    )
                send_msg, commit = msg, None
                if self.codec is not None and isinstance(
                    msg, (ExecuteLevel, ExecuteBatch)
                ):
                    send_msg, commit = self.codec.encode_payload(msg)
                payload = pickle.dumps(Request(rid, send_msg))
                if len(payload) > self.max_frame_bytes:
                    raise FrameTooLarge(
                        f"{type(msg).__name__} frame of {len(payload)} "
                        f"bytes exceeds the {self.max_frame_bytes}-byte cap"
                    )
                conn.send_bytes(payload)
                if commit is not None:
                    commit()
                self.bytes_sent += len(payload)
                self.frames_sent += 1
        except BaseException:
            with self._waiters_lock:
                self._waiters.pop(rid, None)
            raise
        reply = waiter.wait()
        if isinstance(msg, Prime) and not isinstance(reply, ErrorReply):
            # The prime that seeds the worker's codec seeds ours, from
            # the same snapshot object — ids agree end to end.  Primes
            # only happen at quiescence points (startup, mutation,
            # respawn), so no concurrent frame straddles the swap.
            self.codec = (
                WireCodec(msg.snapshot) if msg.wire == "columnar" else None
            )
        if on_bytes is not None:
            on_bytes(len(payload))
        if on_encode is not None:
            on_encode(waiter.encode_s)
        if isinstance(reply, ErrorReply):
            raise reply.error
        return reply


# -- the driver-side router ----------------------------------------------------


@dataclass
class _RpcExecution:
    """Per-query execution context threaded through the level loop.

    Byte and frame attribution lives here, per query: concurrent
    queries each accumulate into their own context (coalescing flushers
    touch contexts cross-thread, hence the lock), so
    ``ExecutionResult.shard_bytes`` and ``explain()``'s wire line stay
    per-query correct under concurrency — no shared router-global
    counter to race on.
    """

    key: str
    binding: tuple[tuple[str, str], ...]
    bytes: list[int]
    frames: list[int]
    #: slot-table version this query was routed under, stamped on its
    #: ExecuteLevel frames (a worker at another epoch rejects them)
    epoch: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def add(self, shard: int, n: int, frames: int = 1) -> None:
        with self._lock:
            while len(self.bytes) <= shard:
                # A mid-query rebalance can re-route levels to shards
                # that did not exist when this query started counting.
                self.bytes.append(0)
                self.frames.append(0)
            self.bytes[shard] += n
            self.frames[shard] += frames


def _frame_trace_ctxs(msg) -> list[tuple]:
    """Every trace context an execute frame carries (a batch fans out
    to each item's own); empty for untraced or non-execute frames."""
    items = getattr(msg, "items", None)
    if items is not None:
        return [
            level.trace_ctx
            for _rid, level in items
            if getattr(level, "trace_ctx", None) is not None
        ]
    ctx = getattr(msg, "trace_ctx", None)
    return [] if ctx is None else [ctx]


def _record_level_span(
    msg: ExecuteLevel,
    reply,
    start: float,
    end: float,
    encode_s: float,
    shard: int,
    coalesced: int = 1,
) -> None:
    """Record one traced level round trip driver-side.

    Re-anchors the worker's shipped span records at *start* (the only
    shared instant the two clocks agree on — the driver's send is the
    worker's receipt, minus wire latency) and appends the worker's
    reply-encode time as a span at the tail of the round-trip window.
    ``coalesced`` > 1 marks members of a shared :class:`ExecuteBatch`
    frame, whose round trip (and encode share) covers all members.
    """
    attrs = {"shard": shard, "level": msg.level, "phase": msg.phase}
    if coalesced > 1:
        attrs["coalesced"] = coalesced
    ref = record_remote(msg.trace_ctx, "rpc:level", start, end, **attrs)
    if ref is None:
        return
    records = list(getattr(reply, "spans", None) or ())
    if encode_s > 0.0:
        records.append(
            ("encode", -1, max(0.0, (end - start) - encode_s), encode_s, {})
        )
    if records:
        attach_worker_spans(
            ref, records, anchor=start, scale_hint=coalesced, shard=shard
        )


class _PendingLevel:
    """One query's ExecuteLevel waiting in a shard's coalescer."""

    __slots__ = ("msg", "ctx", "reply", "error", "done")

    def __init__(self, msg: ExecuteLevel, ctx: _RpcExecution | None) -> None:
        self.msg = msg
        self.ctx = ctx
        self.reply = None
        self.error: BaseException | None = None
        self.done = threading.Event()


class _LevelCoalescer:
    """Per-shard micro-batcher merging concurrent queries' levels.

    The first submitter becomes the *leader*: it waits up to the
    coalescing window (or until ``max_batch`` levels are pending — no
    background thread, no idle timer when traffic is serial), then
    drains **everything** pending and flushes it in chunks of at most
    ``max_batch`` as :class:`ExecuteBatch` frames; a chunk of one goes
    out as a plain :class:`ExecuteLevel`.  Followers block on their
    item until the leader's flush resolves it.  Every exit path sets
    the item's event — a dead worker fails all coalesced queries typed
    (or they recover via the respawn retry inside ``_shard_call``),
    never hangs them.
    """

    def __init__(self, router: "RpcShardRouter", shard: int) -> None:
        self.router = router
        self.shard = shard
        self.window = router.coalesce_window_ms / 1000.0
        self.max_batch = router.coalesce_max_batch
        self._cond = checked(threading.Condition(), "_LevelCoalescer._cond")
        self._pending: list[_PendingLevel] = []
        self._leader = False

    def submit(self, msg: ExecuteLevel, exec_ctx: _RpcExecution | None):
        item = _PendingLevel(msg, exec_ctx)
        with self._cond:
            self._pending.append(item)
            if self._leader:
                if len(self._pending) >= self.max_batch:
                    self._cond.notify_all()
                batch = None
            else:
                self._leader = True
                # Holding the window open only pays when another query
                # is actually in flight; a lone query's levels would
                # just eat the full window as pure latency tax, so the
                # leader checks router-observed concurrency first.
                if self.window > 0 and self.router._active_queries() > 1:
                    deadline = time.monotonic() + self.window
                    while len(self._pending) < self.max_batch:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cond.wait(remaining)
                batch, self._pending = self._pending, []
                self._leader = False
        if batch is None:
            item.done.wait()
        else:
            for start in range(0, len(batch), self.max_batch):
                self._flush(batch[start : start + self.max_batch])
        if item.error is not None:
            raise item.error
        return item.reply

    def _flush(self, chunk: list[_PendingLevel]) -> None:
        try:
            if len(chunk) == 1:
                item = chunk[0]
                self.router._note_frames(1)
                item.reply = self.router._call_with_registration(
                    self.shard, item.msg, item.ctx
                )
            else:
                self._flush_batch(chunk)
        except BaseException as exc:
            for item in chunk:
                if item.reply is None and item.error is None:
                    item.error = exc
        finally:
            for item in chunk:
                item.done.set()

    def _flush_batch(self, chunk: list[_PendingLevel]) -> None:
        router, shard = self.router, self.shard
        sub_rids = [router._next_sub_id() for _ in chunk]
        msg = ExecuteBatch(
            items=tuple(
                (rid, item.msg) for rid, item in zip(sub_rids, chunk)
            )
        )
        sent = [0]
        encode = [0.0]

        def on_bytes(n: int) -> None:
            sent[0] = n

        traced = any(item.msg.trace_ctx is not None for item in chunk)
        on_encode = (
            (lambda s: encode.__setitem__(0, s)) if traced else None
        )
        router._note_frames(1)
        start = time.perf_counter()
        reply = router._shard_call(shard, msg, on_bytes, on_encode)
        end = time.perf_counter()
        # Attribute the shared frame's bytes across its members (the
        # remainder lands on the first few); each member rode 1 frame.
        # The worker's encode time is split equally the same way.
        share, spill = divmod(sent[0], len(chunk))
        encode_share = encode[0] / len(chunk)
        by_sub = dict(reply.replies)
        for index, (rid, item) in enumerate(zip(sub_rids, chunk)):
            if item.ctx is not None:
                item.ctx.add(shard, share + (1 if index < spill else 0))
            sub = by_sub.get(rid)
            if item.msg.trace_ctx is not None:
                _record_level_span(
                    item.msg,
                    sub,
                    start,
                    end,
                    encode_share,
                    shard,
                    coalesced=len(chunk),
                )
            if sub is None:
                item.error = RpcProtocolError(
                    f"shard {shard} batch reply is missing request {rid}"
                )
            elif isinstance(sub, ErrorReply):
                if isinstance(sub.error, TemplateNotRegistered):
                    # An ad-hoc plan not yet shipped to this worker:
                    # register and retry this member individually.
                    try:
                        router._note_frames(1)
                        item.reply = router._call_with_registration(
                            shard, item.msg, item.ctx
                        )
                    except BaseException as exc:
                        item.error = exc
                else:
                    item.error = sub.error
            else:
                item.reply = sub


class RpcShardRouter(ShardRouter):
    """A :class:`~repro.cluster.router.ShardRouter` whose shards are
    long-lived server processes reached over the RPC protocol.

    Level scheduling, the shuffle exchange and report merging are
    inherited unchanged — results are placed by submission position, so
    answers and merged reports are deterministic regardless of the order
    shard replies arrive in.  What changes is the dispatch hop: instead
    of running task specs through in-process backends, the router sends
    each shard an :class:`ExecuteLevel` frame naming the tasks of its
    nodes (the specs themselves live worker-side, bound from the
    registered template), plus the exchange rows.
    """

    transport = "rpc"

    def __init__(
        self,
        num_nodes: int,
        num_shards: int,
        params: CostParams = DEFAULT_PARAMS,
        worker_backend: str = "serial",
        worker_backend_workers: int | None = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        parallel_shards: bool = True,
        on_failure=None,
        on_warning=None,
        start_method: str | None = None,
        spawn_timeout: float = DEFAULT_SPAWN_TIMEOUT,
        wire_format: str = "pickle",
        pipeline: int = DEFAULT_RPC_PIPELINE,
        coalesce_window_ms: float = 0.0,
        coalesce_max_batch: int = 1,
    ) -> None:
        if worker_backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown worker backend {worker_backend!r}; "
                f"expected one of {BACKEND_NAMES}"
            )
        if wire_format not in WIRE_FORMATS:
            raise ValueError(
                f"unknown wire format {wire_format!r}; "
                f"expected one of {WIRE_FORMATS}"
            )
        if pipeline < 0:
            raise ValueError(f"pipeline must be >= 0, got {pipeline}")
        if coalesce_window_ms < 0:
            raise ValueError(
                f"coalesce_window_ms must be >= 0, got {coalesce_window_ms}"
            )
        if coalesce_max_batch < 1:
            raise ValueError(
                f"coalesce_max_batch must be >= 1, got {coalesce_max_batch}"
            )
        super().__init__(
            num_nodes,
            num_shards,
            params=params,
            backends=[SerialBackend() for _ in range(num_shards)],
            parallel_shards=parallel_shards,
        )
        self.worker_backend = worker_backend
        self.worker_backend_workers = worker_backend_workers
        self.wire_format = wire_format
        self.max_frame_bytes = max_frame_bytes
        self.start_method = start_method
        self.spawn_timeout = spawn_timeout
        self.pipeline = pipeline
        self.coalesce_window_ms = coalesce_window_ms
        self.coalesce_max_batch = coalesce_max_batch
        self.on_failure = on_failure
        #: receives worker-side operational warnings (e.g. a shard
        #: server's process pool falling back to serial) so they surface
        #: through the service's stats exactly like in-process fallbacks
        self.on_warning = on_warning
        self._counter_lock = checked(
            threading.Lock(), "RpcShardRouter._counter_lock"
        )
        self.shard_failures = 0  # guarded-by: _counter_lock
        #: level traffic counters: requests = ExecuteLevels asked for,
        #: frames = physical wire frames that carried them.  Coalescing
        #: provably merges when frames < requests.
        self.level_requests = 0  # guarded-by: _counter_lock
        self.level_frames = 0  # guarded-by: _counter_lock
        self._sub_ids = itertools.count(1)  # guarded-by: _counter_lock
        # One witness node for all shards: cross-shard nesting between
        # sibling locks is same-name and thus not edge-checked (no code
        # path holds two shard locks at once).
        self._shard_locks = [
            checked(threading.RLock(), "RpcShardRouter._shard_locks")
            for _ in range(num_shards)
        ]
        self._clients: list[ShardWorkerClient | None] = [None] * num_shards  # guarded-by: _shard_locks
        self._registry_lock = checked(
            threading.Lock(), "RpcShardRouter._registry_lock"
        )
        self._templates: dict[str, PhysicalPlan] = {}  # guarded-by: _registry_lock
        self._last_snapshot = None
        #: the slot table the fleet was last synchronized to (set by
        #: ensure_workers / migrate); stale-epoch re-routing consults it
        self._table: SlotTable | None = None
        #: the caller's parallelism request, re-applied when a
        #: rebalance changes the shard count (1 shard forces serial)
        self._parallel_requested = parallel_shards
        #: queries currently inside execute_prepared — the coalescer
        #: only holds its window open when this exceeds one
        self.active_queries = 0  # guarded-by: _counter_lock
        self._coalescers = (
            [_LevelCoalescer(self, shard) for shard in range(num_shards)]
            if coalesce_max_batch > 1
            else None
        )

    # -- transport-specific report labels ----------------------------------

    def _shard_backend_name(self, shard: int) -> str:
        return f"rpc:{self.worker_backend}"

    def _dispatch_width(self) -> int:
        # Coalescer followers park on a dispatch thread until the
        # leader flushes their frame, so size the pool for the full
        # pipeline depth per shard, not just one call per shard.
        return max(4, 2 * self.num_shards,
                   max(1, self.pipeline) * self.num_shards)

    def _bytes_shipped(self, exec_ctx) -> tuple[int, ...] | None:
        if isinstance(exec_ctx, _RpcExecution):
            return tuple(exec_ctx.bytes)
        return None

    def _frames_shipped(self, exec_ctx) -> tuple[int, ...] | None:
        if isinstance(exec_ctx, _RpcExecution):
            return tuple(exec_ctx.frames)
        return None

    def _note_frames(self, n: int) -> None:
        with self._counter_lock:
            self.level_frames += n

    def _active_queries(self) -> int:
        with self._counter_lock:
            return self.active_queries

    def _next_sub_id(self) -> int:
        with self._counter_lock:
            return next(self._sub_ids)

    @property
    def templates_registered(self) -> int:
        with self._registry_lock:
            return len(self._templates)

    # -- lifecycle ----------------------------------------------------------

    def ensure_workers(self, snapshot) -> None:
        """Spawn any missing shard server and (re-)prime stale ones.

        A worker is primed only when its resident snapshot token differs
        from its shard's current token — after a mutation, only the
        shards the batch actually touched receive a new snapshot.  The
        snapshot's slot-table version rides on every ``Prime``; a worker
        whose data is current but whose epoch lags (e.g. after a rolled
        back migration) is re-synchronized with a cheap
        :class:`TableUpdate` instead of a full re-prime.
        """
        epoch = snapshot.table.version
        for shard in range(self.num_shards):
            with self._shard_locks[shard]:
                client = self._clients[shard]
                if client is None:
                    # First spawn of this shard's server: not a failure.
                    try:
                        client = self._start_worker(shard)
                    except Exception as exc:
                        self._record_failure(shard, f"spawn failed: {exc!r}")
                        raise ShardUnavailable(
                            shard, f"spawn failed: {exc!r}"
                        ) from exc
                elif not client.alive():
                    # The worker died since we last spoke to it: recover
                    # (which records the failure and re-registers).
                    client = self._recover(shard, "worker process died")
                shard_snapshot = snapshot.shards[shard]
                if client.primed_token != shard_snapshot.token:
                    self._shard_call(
                        shard,
                        Prime(
                            shard_snapshot, wire=self.wire_format, epoch=epoch
                        ),
                    )
                    client.primed_token = shard_snapshot.token
                    client.primed_epoch = epoch
                    self._forward_warnings(shard, client)
                elif client.primed_epoch != epoch:
                    self._shard_call(
                        shard,
                        TableUpdate(epoch=epoch, num_shards=self.num_shards),
                    )
                    client.primed_epoch = epoch
        self._last_snapshot = snapshot
        self._table = snapshot.table

    def _forward_warnings(self, shard: int, client: ShardWorkerClient) -> None:
        """Relay a worker's operational warnings (a prime may have
        demoted its process pool to serial) to ``on_warning`` — once
        each, mirroring the in-process fallback reporting."""
        if self.on_warning is None:
            return
        try:
            stats = client.request(Stats())
        except Exception:
            return  # the request path will surface real failures
        for warning in stats.warnings[client.warnings_forwarded:]:
            try:
                self.on_warning(f"shard {shard}: {warning}")
            except Exception:
                pass
        client.warnings_forwarded = len(stats.warnings)

    # -- live rebalancing ----------------------------------------------------

    def _grow_to(self, count: int) -> None:
        """Extend the per-shard structures (locks, client slots, serial
        placeholder backends, coalescers) to *count* entries.  The lists
        only ever grow — a shrink leaves trailing entries in place so a
        query racing the flip can still index its (stale) shard and get
        the typed :class:`StaleEpoch` answer instead of an IndexError.
        """
        while len(self._shard_locks) < count:
            self._shard_locks.append(
                checked(threading.RLock(), "RpcShardRouter._shard_locks")
            )
        while len(self._clients) < count:  # lint: disable=LOCK001 — grow-only append; migrations serialize on the store write lock
            self._clients.append(None)  # lint: disable=LOCK001 — slot is None until primed under its shard lock
        while len(self.backends) < count:
            self.backends.append(SerialBackend())
        if self._coalescers is not None:
            while len(self._coalescers) < count:
                self._coalescers.append(
                    _LevelCoalescer(self, len(self._coalescers))
                )

    def _set_topology(self, count: int, table, snapshot) -> None:
        """Flip the driver's view of the fleet to *count* shards at
        *table*'s epoch and retire the (now mis-sized) dispatch pool."""
        self.num_shards = count
        self.parallel_shards = self._parallel_requested and count > 1
        self._table = table
        self._last_snapshot = snapshot
        with self._lock:
            old_pool, self._pool = self._pool, None
        if old_pool is not None:
            # wait=False: a rebalance triggered from a dispatch-pool
            # thread (stale-epoch re-route) must not join its own pool.
            old_pool.shutdown(wait=False)

    def _retire_clients(self, first: int) -> None:
        """Close every client at shard index >= *first*."""
        retired: list[ShardWorkerClient] = []
        for shard in range(first, len(self._clients)):  # lint: disable=LOCK001 — len() only; the list never shrinks
            with self._shard_locks[shard]:
                client = self._clients[shard]
                self._clients[shard] = None  # lint: disable=LOCK001 — this shard's lock is held
            if client is not None:
                retired.append(client)
        for client in retired:
            client.close()

    def migrate(self, store, moves, new_num_shards=None) -> tuple[int, ...]:
        """Execute a slot-migration plan against the live worker fleet.

        Returns bytes shipped per (surviving or new) shard — the proof
        that a migration moves only the reassigned slots' data, not a
        full re-prime.  The sequence:

        1. synchronize the fleet at the current epoch (spawns lazily),
        2. apply the plan to *store* (epoch bumps to ``v+1``),
        3. spawn + fully prime new shards at ``v+1`` (their snapshot
           slice holds exactly the moved-in nodes),
        4. ship surviving shards their delta as :class:`PrimeSlots`
           (data only — they stay at ``v`` and keep answering),
        5. flip every worker to ``v+1`` with :class:`TableUpdate`,
        6. retire removed shards' workers and resize the driver.

        On any failure the plan is inverted on the store (epochs stay
        monotone), the driver resizes back, and affected workers are
        lazily reconciled by the next :meth:`ensure_workers` — queries
        keep answering against the restored table.  Transport failures
        surface as typed :class:`ShardUnavailable`.

        Callers must quiesce queries across steps 2–5 (the service's
        store write lock does exactly that): between a survivor's delta
        in step 4 and the flip in step 5, old-epoch frames naming its
        moved-out nodes would scan maps it already dropped, and on the
        columnar wire the codec reseed must not straddle an in-flight
        frame.  Queries that *start* against the old table and arrive
        after the flip are safe without quiescence: the worker rejects
        them typed (:class:`StaleEpoch`) and the driver re-routes.
        """
        self.ensure_workers(store.snapshot())
        old_table = self._table
        old_count = self.num_shards
        moves = tuple(moves)
        target = old_table.num_shards if new_num_shards is None else new_num_shards
        if not moves and target == old_count:
            return ()
        # Node movement per shard, against the pre-move ring (the ring
        # width itself never changes, only slot ownership).
        moved_in: dict[int, list[int]] = {}
        moved_out: dict[int, list[int]] = {}
        for slot, src, dst in moves:
            for node in store.nodes_of_slot(slot):
                moved_in.setdefault(dst, []).append(node)
                moved_out.setdefault(src, []).append(node)
        new_table = store.apply_rebalance(moves, target)
        snapshot = store.snapshot()
        new_count = new_table.num_shards
        self._grow_to(max(old_count, new_count))
        shipped = [0] * max(old_count, new_count)

        def note(shard: int):
            def on_bytes(n: int) -> None:
                shipped[shard] += n

            return on_bytes

        failed_shard = [None]
        try:
            # New shards: spawn and prime their slice at the new epoch.
            # The slice holds exactly the moved-in nodes' files (every
            # other node's map is empty), so a "full" prime here *is*
            # the migration delta.
            for shard in range(old_count, new_count):
                failed_shard[0] = shard
                shard_snapshot = snapshot.shards[shard]
                with span("rebalance:prime", shard=shard):
                    with self._shard_locks[shard]:
                        client = self._clients[shard]
                        if client is None or not client.alive():
                            client = self._start_worker(shard)
                        client.request(
                            Prime(
                                shard_snapshot,
                                wire=self.wire_format,
                                epoch=new_table.version,
                            ),
                            note(shard),
                        )
                        client.primed_token = shard_snapshot.token
                        client.primed_epoch = new_table.version
            # Surviving shards with movement: ship only the delta.
            for shard in range(min(old_count, new_count)):
                adds_nodes = sorted(moved_in.get(shard, ()))
                drops = tuple(sorted(moved_out.get(shard, ())))
                if not adds_nodes and not drops:
                    continue
                failed_shard[0] = shard
                shard_snapshot = snapshot.shards[shard]
                adds = {
                    node: shard_snapshot.files[node] for node in adds_nodes
                }
                with span(
                    "rebalance:delta",
                    shard=shard,
                    adds=len(adds_nodes),
                    drops=len(drops),
                ):
                    with self._shard_locks[shard]:
                        self._shard_call(
                            shard,
                            PrimeSlots(
                                adds=adds,
                                drops=drops,
                                token=shard_snapshot.token,
                                wire=self.wire_format,
                            ),
                            note(shard),
                        )
                        client = self._clients[shard]
                        # Reseed the driver's codec end from the same
                        # post-move snapshot the worker just merged to:
                        # identical content and iteration order on both
                        # sides means identical term-id assignments.
                        if client is not None:
                            client.codec = (
                                WireCodec(shard_snapshot)
                                if self.wire_format == "columnar"
                                else None
                            )
                            client.primed_token = shard_snapshot.token
            # Flip every surviving worker to the new epoch (monotone and
            # idempotent worker-side, so a respawn-retry is harmless).
            with span("rebalance:flip", epoch=new_table.version):
                for shard in range(new_count):
                    failed_shard[0] = shard
                    with self._shard_locks[shard]:
                        client = self._clients[shard]
                        if client is not None and client.alive():
                            self._shard_call(
                                shard,
                                TableUpdate(
                                    epoch=new_table.version,
                                    num_shards=new_count,
                                ),
                            )
                            client.primed_epoch = new_table.version
        except BaseException as exc:
            self._rollback_migration(store, moves, old_count)
            if isinstance(exc, ShardUnavailable):
                raise
            if isinstance(exc, _TRANSPORT_ERRORS):
                shard = failed_shard[0] if failed_shard[0] is not None else -1
                self._record_failure(shard, f"migration failed: {exc!r}")
                raise ShardUnavailable(
                    shard, f"migration failed: {exc!r}"
                ) from exc
            raise
        if new_count < old_count:
            self._retire_clients(new_count)
        self._set_topology(new_count, new_table, snapshot)
        return tuple(shipped[:new_count])

    def _rollback_migration(self, store, moves, old_count: int) -> None:
        """Undo a half-applied migration: invert the plan on the store
        (the epoch keeps climbing — versions never reuse), resize the
        driver back, and drop any clients the grow spawned.  Workers the
        failed attempt already touched are *not* chased here; their
        primed token/epoch records are accurate, so the next
        :meth:`ensure_workers` re-primes or re-stamps exactly the stale
        ones while queries keep answering."""
        inverse = tuple((slot, dst, src) for slot, src, dst in moves)
        store.apply_rebalance(inverse, old_count)
        snapshot = store.snapshot()
        self._retire_clients(old_count)
        self._set_topology(old_count, snapshot.table, snapshot)

    def _start_worker(self, shard: int) -> ShardWorkerClient:
        """Spawn shard *shard*'s server, handshake, re-register templates.

        Callers (``ensure_workers``, ``_recover``) hold this shard's lock.
        """
        old = self._clients[shard]  # lint: disable=LOCK001 — caller holds this shard's lock (see docstring)
        self._clients[shard] = None  # lint: disable=LOCK001 — caller holds this shard's lock (see docstring)
        if old is not None:
            old.close(kill=True)
        client = ShardWorkerClient(
            shard=shard,
            num_nodes=self.num_nodes,
            num_shards=self.num_shards,
            backend=self.worker_backend,
            backend_workers=self.worker_backend_workers,
            max_frame_bytes=self.max_frame_bytes,
            start_method=self.start_method,
            spawn_timeout=self.spawn_timeout,
            pipeline=self.pipeline,
        )
        try:
            client.start()
            with self._registry_lock:
                templates = list(self._templates.items())
            for key, physical in templates:
                client.request(RegisterTemplate(key, physical))
        except Exception:
            client.close(kill=True)
            raise
        self._clients[shard] = client  # lint: disable=LOCK001 — caller holds this shard's lock (see docstring)
        return client

    def worker_stats(self) -> list[StatsReply]:
        """One :class:`StatsReply` per live shard server."""
        return [
            self._shard_call(shard, Stats())
            for shard in range(self.num_shards)
        ]

    def worker_gauges(self) -> list[tuple[int, StatsReply | None]]:
        """Telemetry without side effects, probed concurrently:
        ``(shard, StatsReply | None)`` pairs for the shard servers with
        a live client — ``None`` marks a probe that failed mid-flight
        (the service surfaces it as a *stale* gauge instead of raising
        or silently hiding the shard).  A never-spawned or already
        reaped shard is absent entirely (no spawn, no recovery, no
        failure recorded).  Probes fan out on the dispatch pool so one
        slow worker does not serialize the sweep."""
        probes: list[tuple[int, ShardWorkerClient]] = []
        for shard in range(self.num_shards):
            with self._shard_locks[shard]:
                client = self._clients[shard]
            if client is None or not client.alive():
                continue
            probes.append((shard, client))

        def probe(client: ShardWorkerClient) -> StatsReply | None:
            try:
                return client.request(Stats())
            except Exception:
                return None

        if len(probes) > 1:
            pool = self._dispatch_pool()
            futures = [(s, pool.submit(probe, c)) for s, c in probes]
            return [(s, f.result()) for s, f in futures]
        return [(s, probe(c)) for s, c in probes]

    def wire_stats(self) -> list[tuple[int, dict]]:
        """Driver-side transport counters per live shard connection:
        frames/bytes sent and, on the columnar wire, the codec's
        frame/term totals.  Point-in-time advisory reads — no RPC, no
        blocking on in-flight requests."""
        out: list[tuple[int, dict]] = []
        for shard in range(self.num_shards):
            with self._shard_locks[shard]:
                client = self._clients[shard]
            if client is None:
                continue
            stats = {
                "frames_sent": client.frames_sent,
                "bytes_sent": client.bytes_sent,
            }
            codec = client.codec
            if codec is not None:
                stats.update(codec.stats())
            out.append((shard, stats))
        return out

    def invalidate(self, shard: int) -> None:
        """Drop shard *shard*'s resident snapshot (re-primed lazily)."""
        with self._shard_locks[shard]:
            self._shard_call(shard, InvalidateSnapshot())
            client = self._clients[shard]
            if client is not None:
                client.primed_token = None

    def close(self) -> None:
        # len(self._clients) can exceed num_shards after a shrink (the
        # per-shard lists only grow); retire every slot either way.
        for shard in range(len(self._clients)):  # lint: disable=LOCK001 — len() only; the list never shrinks
            with self._shard_locks[shard]:
                client = self._clients[shard]
                self._clients[shard] = None
            if client is not None:
                client.close()
        super().close()

    # -- failure handling ---------------------------------------------------

    def _record_failure(self, shard: int, reason: str) -> None:
        # Distinct shards fail concurrently (each path holds only its
        # own shard lock), so the shared tally needs the counter mutex.
        with self._counter_lock:
            self.shard_failures += 1
        if self.on_failure is not None:
            try:
                self.on_failure(shard, reason)
            except Exception:
                pass

    def _recover(self, shard: int, reason: str) -> ShardWorkerClient:
        """Respawn a dead worker: restart, re-prime, re-register.

        Records the failure that triggered the recovery; a failed
        respawn records a second failure and raises
        :class:`ShardUnavailable`.  Callers hold the shard lock.
        """
        self._record_failure(shard, reason)
        try:
            client = self._start_worker(shard)
            if self._last_snapshot is not None:
                shard_snapshot = self._last_snapshot.shards[shard]
                epoch = self._last_snapshot.table.version
                client.request(
                    Prime(shard_snapshot, wire=self.wire_format, epoch=epoch)
                )
                client.primed_token = shard_snapshot.token
                client.primed_epoch = epoch
                self._forward_warnings(shard, client)
            return client
        except Exception as exc:
            self._record_failure(shard, f"respawn failed: {exc!r}")
            self._clients[shard] = None  # lint: disable=LOCK001 — caller holds this shard's lock (see docstring)
            raise ShardUnavailable(shard, f"respawn failed: {exc!r}") from exc

    def _ensure_client(self, shard: int) -> ShardWorkerClient:
        """The shard's live client, recovering a dead one (recorded as
        a failure, matching the in-call discovery semantics)."""
        with self._shard_locks[shard]:
            client = self._clients[shard]
            if client is None or not client.alive():
                client = self._recover(shard, "worker process is not running")
            return client

    def _recover_from(
        self, shard: int, failed: ShardWorkerClient, reason: str
    ) -> ShardWorkerClient:
        """Recover after *failed* saw a transport error — once per dead
        worker: when another thread already replaced it, reuse its
        client instead of respawning (and counting a failure) again."""
        with self._shard_locks[shard]:
            current = self._clients[shard]
            if current is not None and current is not failed and current.alive():
                return current
            return self._recover(shard, reason)

    def _shard_call(self, shard: int, msg, on_bytes=None, on_encode=None):
        """One request to one shard, with the one-respawn retry budget.

        The shard lock guards only client lookup and recovery — the
        round trip itself runs outside it, so concurrent queries
        multiplex on the worker connection instead of serializing
        behind a per-shard lock.  A typed :class:`ErrorReply` from a
        live worker re-raises as-is (the request failed, not the
        worker).  A transport failure means the worker died: it is
        respawned — snapshot re-primed, templates re-registered — and
        the request retried exactly once (idempotent: request-id dedup
        worker-side, and a fresh worker starts from a clean slate); any
        further failure raises :class:`ShardUnavailable`.  A successful
        retry of a traced execute frame is marked by an ``rpc:retry``
        span covering respawn + resend on every contributing trace.
        """
        client = self._ensure_client(shard)
        try:
            return client.request(msg, on_bytes, on_encode)
        except _TRANSPORT_ERRORS as exc:
            retry_start = time.perf_counter()
            retry = self._recover_from(
                shard, client, f"{type(exc).__name__}: {exc}"
            )
            try:
                reply = retry.request(msg, on_bytes, on_encode)
            except _TRANSPORT_ERRORS as retry_exc:
                self._record_failure(
                    shard, f"request failed after respawn: {retry_exc!r}"
                )
                raise ShardUnavailable(
                    shard, f"request failed after respawn: {retry_exc!r}"
                ) from retry_exc
            retry_end = time.perf_counter()
            for ctx in _frame_trace_ctxs(msg):
                record_remote(
                    ctx,
                    "rpc:retry",
                    retry_start,
                    retry_end,
                    shard=shard,
                    error=type(exc).__name__,
                )
            return reply

    # -- template registry ---------------------------------------------------

    def register_prepared(self, prepared) -> bool:
        """Register a template's unbound physical plan with every shard.

        Stamps the prepared plan with its registry key, so every bound
        copy derived from it (:meth:`~repro.physical.executor
        .PreparedPlan.bind`) carries the provenance that lets queries
        cross the wire as constant vectors.  Dead workers are skipped —
        the respawn path re-registers the whole registry.
        """
        key = prepared.template_key
        if key is None:
            key = plan_key(prepared.physical)
            prepared.template_key = key
        with self._registry_lock:
            new = key not in self._templates
            self._templates[key] = prepared.physical
        self.register(prepared.compiled)
        if new:
            for shard in range(self.num_shards):
                with self._shard_locks[shard]:
                    client = self._clients[shard]
                    if client is None or not client.alive():
                        continue
                    try:
                        client.request(RegisterTemplate(key, prepared.physical))
                    except _TRANSPORT_ERRORS:
                        pass  # picked up by the respawn path
        return new

    # -- execution -----------------------------------------------------------

    def execute(self, compiled, snapshot, exec_ctx=None):
        """Reject bare compiled plans with a typed error.

        The RPC workers rebuild task specs from a registered *physical*
        plan, which a :class:`~repro.physical.job_compiler.CompiledPlan`
        alone does not carry — callers must go through
        :meth:`execute_prepared` (which sets up the execution context
        this method requires).
        """
        if not isinstance(exec_ctx, _RpcExecution):
            raise RpcError(
                "RpcShardRouter cannot execute a bare CompiledPlan: shard "
                "servers rebuild specs from the registered physical plan; "
                "use execute_prepared(prepared, snapshot)"
            )
        return super().execute(compiled, snapshot, exec_ctx)

    def execute_prepared(self, prepared, snapshot):
        """Run a prepared plan: bound constant vectors over the wire.

        A plan bound from a registered template ships as its template
        key plus binding; anything else (raw logical plans through the
        escape hatches, uncacheable queries) is registered ad hoc as its
        own template with an empty binding.  Workers bind lazily: the
        first :class:`ExecuteLevel` naming a ``(key, binding)`` compiles
        and caches it worker-side — no per-query bind round trip.
        """
        self.ensure_workers(snapshot)
        key = prepared.template_key
        binding = tuple(prepared.binding)
        with self._registry_lock:
            registered = key is not None and key in self._templates
        if not registered:
            key = plan_key(prepared.physical)
            binding = ()
            with self._registry_lock:
                self._templates.setdefault(key, prepared.physical)
        exec_ctx = _RpcExecution(
            key=key,
            binding=binding,
            bytes=[0] * self.num_shards,
            frames=[0] * self.num_shards,
            epoch=snapshot.table.version,
        )
        with self._counter_lock:
            self.active_queries += 1
        try:
            return self.execute(prepared.compiled, snapshot, exec_ctx)
        finally:
            with self._counter_lock:
                self.active_queries -= 1

    # -- the dispatch hop ----------------------------------------------------

    def _call_with_registration(
        self, shard: int, msg: ExecuteLevel, exec_ctx: _RpcExecution | None
    ):
        """An ExecuteLevel round trip, traced when the frame carries a
        context: the driver records an ``rpc:level`` span over the
        round trip and re-anchors the worker's shipped span records
        (plus the reply-encode time from the envelope) under it."""
        on_bytes = (
            None if exec_ctx is None else (lambda n: exec_ctx.add(shard, n))
        )
        if msg.trace_ctx is None:
            return self._send_level(shard, msg, on_bytes)
        encode = [0.0]
        start = time.perf_counter()
        reply = self._send_level(
            shard, msg, on_bytes, lambda s: encode.__setitem__(0, s)
        )
        _record_level_span(
            msg, reply, start, time.perf_counter(), encode[0], shard
        )
        return reply

    def _send_level(self, shard, msg, on_bytes=None, on_encode=None):
        """The raw round trip, self-healing the one typed failure lazy
        binding can produce: a worker missing the template (ad-hoc
        plans are registered driver-side only; respawns start empty
        between re-registration and use) gets it shipped, then the
        level is resent."""
        try:
            return self._shard_call(shard, msg, on_bytes, on_encode)
        except TemplateNotRegistered:
            with self._registry_lock:
                physical = self._templates.get(msg.key)
            if physical is None:
                raise
            self._shard_call(
                shard, RegisterTemplate(msg.key, physical), on_bytes
            )
            return self._shard_call(shard, msg, on_bytes, on_encode)

    def _level_call(
        self, shard: int, msg: ExecuteLevel, exec_ctx: _RpcExecution | None
    ):
        """Route one level to its shard: through the coalescer when
        cross-query batching is on, directly otherwise."""
        with self._counter_lock:
            self.level_requests += 1
        if self._coalescers is not None:
            return self._coalescers[shard].submit(msg, exec_ctx)
        self._note_frames(1)
        return self._call_with_registration(shard, msg, exec_ctx)

    def _reroute_level(self, msg: ExecuteLevel, exec_ctx):
        """Resend a stale-stamped level's tasks under the current table.

        A worker rejected *msg* because a rebalance flipped the slot
        table after this query was routed.  The tasks themselves are
        placement-level facts — node assignments never change, only
        which shard *hosts* a node — so they are regrouped by the
        current table and resent, stamped with its epoch.  The map
        phase's ``inputs`` travel unchanged to every target: they are
        keyed by node-sliced file name, and a superset is harmless.
        Results are reassembled in the original task order, keeping the
        deterministic merge upstream byte-identical.
        """
        table = self._table
        if table is None:
            raise RpcError("no slot table to re-route against")
        groups: dict[int, list[int]] = {}
        for index, task in enumerate(msg.tasks):
            node = task[2] if msg.phase == "map" else task[1] % self.num_nodes
            groups.setdefault(table.shard_of_node(node), []).append(index)
        results: list = [None] * len(msg.tasks)
        for shard in sorted(groups):
            indices = groups[shard]
            sub = dataclass_replace(
                msg,
                tasks=tuple(msg.tasks[i] for i in indices),
                epoch=table.version,
            )
            with self._counter_lock:
                self.level_requests += 1
            self._note_frames(1)
            reply = self._call_with_registration(shard, sub, exec_ctx)
            for i, result in zip(indices, reply.results):
                results[i] = result
        return ResultsReply(results=results)

    def _run_shards(self, per_shard, metas, ctxs, phase, level_index, exec_ctx):
        # Sized by the level's own routing table, not self.num_shards: a
        # concurrent rebalance may have resized the fleet after this
        # level was grouped, and the stale-epoch protocol reconciles
        # that, not this loop.
        active = [s for s in range(len(per_shard)) if per_shard[s]]
        # Captured on the query thread: the dispatch-pool threads the
        # per-shard closures run on never saw this query's contextvar.
        tctx = trace_ctx()

        def call(shard: int) -> list:
            if phase == "map":
                # Ship only the shuffled intermediates this shard's map
                # chains actually read — already sliced to its nodes in
                # the driver's per-shard HDFS view.
                names = sorted(
                    {
                        name
                        for inv in per_shard[shard]
                        for name in inv.spec.hdfs_inputs()
                    }
                )
                hdfs = ctxs[shard].hdfs
                inputs = {name: hdfs.read(name) for name in names}
                tasks = tuple(metas[shard])
            else:
                inputs = {}
                tasks = tuple(
                    (job, partition, inv.args[1])
                    for (job, partition), inv in zip(
                        metas[shard], per_shard[shard]
                    )
                )
            msg = ExecuteLevel(
                key=exec_ctx.key,
                binding=exec_ctx.binding,
                level=level_index,
                phase=phase,
                tasks=tasks,
                inputs=inputs,
                trace_ctx=tctx,
                epoch=exec_ctx.epoch,
            )
            try:
                reply = self._level_call(shard, msg, exec_ctx)
            except StaleEpoch:
                # The topology moved under this query (a rebalance
                # flipped the slot table after it was routed): regroup
                # the same tasks by the current table and resend.
                reply = self._reroute_level(msg, exec_ctx)
            if len(reply.results) != len(per_shard[shard]):
                raise RpcProtocolError(
                    f"shard {shard} returned {len(reply.results)} results "
                    f"for {len(per_shard[shard])} tasks"
                )
            return reply.results

        if len(active) > 1 and self.parallel_shards:
            pool = self._dispatch_pool()
            futures = [(s, pool.submit(call, s)) for s in active]
            return [(s, f.result()) for s, f in futures]
        return [(s, call(s)) for s in active]


__all__ = [
    "BatchReply",
    "BoundSpecs",
    "ColumnarFrame",
    "DEFAULT_MAX_FRAME_BYTES",
    "DEFAULT_RPC_PIPELINE",
    "ErrorReply",
    "ExecuteBatch",
    "ExecuteLevel",
    "FrameTooLarge",
    "Hello",
    "HelloReply",
    "InvalidateSnapshot",
    "MESSAGE_TYPES",
    "OkReply",
    "Prime",
    "PrimeSlots",
    "RegisterTemplate",
    "Reply",
    "Request",
    "ResultsReply",
    "RpcError",
    "RpcProtocolError",
    "RpcShardRouter",
    "ShardUnavailable",
    "ShardWorkerClient",
    "Shutdown",
    "StaleEpoch",
    "Stats",
    "StatsReply",
    "TableUpdate",
    "TemplateNotRegistered",
    "WorkerSpawnError",
    "WorkerStateError",
    "plan_key",
    "store_token",
]
