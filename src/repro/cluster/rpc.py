"""RPC shard workers: long-lived shard server processes behind the router.

The in-process :class:`~repro.cluster.router.ShardRouter` calls into
per-shard execution backends by function call; this module replaces that
boundary with a real wire protocol.  Each shard is a **server process**
(stdlib :class:`multiprocessing.connection.Listener` on a localhost
socket, HMAC-authenticated, no third-party deps) that holds, resident:

* its shard's :class:`~repro.partitioning.triple_partitioner
  .StoreSnapshot` (installed by :class:`Prime`, re-installed only when
  the shard's snapshot token changes — a mutation re-primes only the
  shards it touched);
* the **registered templates**: the unbound physical plan of every
  template the service optimized, shipped once by
  :class:`RegisterTemplate` and bound worker-side (the same
  ``substitute_plan`` + ``compile_plan`` pipeline the driver uses, so
  compiled job structures are bit-identical on both ends);
* a local :class:`~repro.mapreduce.backends.ExecutionBackend` — the
  worker itself may fan its batch out on a process pool of its own,
  keyed to the snapshot token exactly like the in-process deployment.

After a template is registered once, a query crosses the wire as its
**bound constant vector** (:class:`BoundSpecs`) plus per-level task
metadata and exchange rows (:class:`ExecuteLevel`): the driver never
re-ships task specs or operator chains.  Message frames are pickled
dataclasses with an explicit size cap; oversized frames and unknown
message types surface as typed errors, never hangs.

The driver side is :class:`RpcShardRouter` — a drop-in
:class:`~repro.cluster.router.ShardRouter` whose level scheduling,
shuffle exchange and :meth:`~repro.mapreduce.counters.ExecutionReport
.merge` accounting are inherited unchanged; only the dispatch hop is
replaced by the protocol.  Worker crashes are detected at the connection
(a typed error reply means the worker is alive and the *request* failed;
a transport error means the worker died): a dead worker is respawned —
re-primed, templates re-registered — and the failed request retried
exactly once; a second failure raises :class:`ShardUnavailable` instead
of deadlocking the service.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import threading
from dataclasses import dataclass, field
from multiprocessing.connection import Client, Listener

from repro.cluster.router import ShardRouter
from repro.cost.params import DEFAULT_PARAMS, CostParams
from repro.mapreduce.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    SerialBackend,
    TaskInvocation,
    make_backend,
    store_token,
)
from repro.columnar.wire import WIRE_FORMATS, ColumnarFrame, WireCodec
from repro.mapreduce.hdfs import HDFS, DistributedRelation
from repro.mapreduce.jobs import TaskContext
from repro.partitioning.triple_partitioner import StoreSnapshot
from repro.physical.executor import job_from_spec
from repro.physical.job_compiler import compile_plan
from repro.physical.translate import PhysicalPlan, substitute_plan

#: Hard cap on one pickled message frame (request or reply).  Large
#: enough for any realistic exchange payload, small enough that a
#: runaway frame fails typed instead of exhausting memory.
DEFAULT_MAX_FRAME_BYTES = 128 * 1024 * 1024

#: Seconds to wait for a spawned worker to report its listening address.
DEFAULT_SPAWN_TIMEOUT = 60.0

#: Bound plans a shard server keeps resident (LRU).  Templates are one
#: per query *shape* and stay; bound plans are one per constant vector,
#: which an ad-hoc workload can grow without limit — a long-lived server
#: must not.
MAX_BOUND_PLANS = 256


# -- typed errors --------------------------------------------------------------


class RpcError(RuntimeError):
    """Base class of every typed RPC-layer error."""


class RpcProtocolError(RpcError):
    """An undecodable frame or unknown message type reached a worker."""


class FrameTooLarge(RpcError):
    """A message frame exceeded ``max_frame_bytes``."""


class TemplateNotRegistered(RpcError):
    """A worker was asked to bind/execute a template it does not hold."""


class WorkerStateError(RpcError):
    """A request arrived in a state the worker cannot serve (e.g. an
    :class:`ExecuteLevel` before any :class:`Prime`)."""


class WorkerSpawnError(RpcError):
    """A shard worker process could not be started or contacted."""


class ShardUnavailable(RuntimeError):
    """A shard worker failed, was respawned once, and failed again.

    The one-retry budget is per request: a crashed worker is restarted
    transparently (snapshot re-primed, templates re-registered) and the
    failed request resent exactly once.  Sustained failure surfaces as
    this typed error — counted in ``snapshot_stats().shard_failures``
    when raised through the query service — rather than a hang.
    """

    def __init__(self, shard: int, message: str) -> None:
        super().__init__(f"shard {shard} unavailable: {message}")
        self.shard = shard
        self.message = message

    def __reduce__(self):
        # The two-argument constructor breaks default exception
        # pickling; errors in this module must survive a pickled hop.
        return (ShardUnavailable, (self.shard, self.message))


#: Connection-level failures that mean "the worker process is gone"
#: (as opposed to a typed error reply, which means the *request* failed
#: on a live worker).  BrokenPipeError/ConnectionError are OSErrors.
_TRANSPORT_ERRORS = (EOFError, OSError)


# -- message frames ------------------------------------------------------------


@dataclass(frozen=True)
class Hello:
    """Handshake / health-check probe."""


@dataclass(frozen=True)
class HelloReply:
    shard: int
    num_nodes: int
    num_shards: int
    pid: int
    snapshot_token: tuple | None


@dataclass(frozen=True)
class Prime:
    """Install (or replace) the worker's resident store snapshot.

    ``wire`` selects the row encoding of subsequent :class:`ExecuteLevel`
    exchanges on this connection: ``"pickle"`` (tuple lists, the
    original format) or ``"columnar"`` (dictionary-encoded id buffers,
    see :mod:`repro.columnar.wire`).  Both ends seed their wire
    dictionaries from this very snapshot, so priming is also the
    synchronization point of the columnar protocol.
    """

    snapshot: StoreSnapshot
    wire: str = "pickle"


@dataclass(frozen=True)
class InvalidateSnapshot:
    """Drop the resident snapshot (idempotent); a new :class:`Prime`
    must arrive before the next map level."""


@dataclass(frozen=True)
class RegisterTemplate:
    """Ship a template's unbound physical plan, once per worker life."""

    key: str
    physical: PhysicalPlan


@dataclass(frozen=True)
class BoundSpecs:
    """Bind a constant vector into a registered template, worker-side.

    This is all that crosses the wire per query after registration: the
    template key plus ``(placeholder, constant)`` pairs.  The worker
    substitutes and recompiles locally (cached per binding), yielding
    the same job structure the driver compiled.
    """

    key: str
    binding: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True)
class ExecuteLevel:
    """Run one scheduling level's tasks owned by this shard.

    ``phase="map"``: ``tasks`` are ``(job_name, tag, node)`` triples
    (``tag`` is None for map-only jobs) and ``inputs`` carries the
    shard-local slices of shuffled intermediates the level's map chains
    read.  ``phase="reduce"``: ``tasks`` are ``(job_name, partition,
    grouped)`` — the cross-shard exchange rows.  Requests are
    self-contained (no execution state lives on the worker between
    levels), which is what makes respawn-and-retry safe.
    """

    key: str
    binding: tuple[tuple[str, str], ...]
    level: int
    phase: str
    tasks: tuple
    inputs: dict[str, DistributedRelation] = field(default_factory=dict)


@dataclass(frozen=True)
class Stats:
    """Read the worker's counters (idempotent)."""


@dataclass(frozen=True)
class StatsReply:
    shard: int
    pid: int
    snapshot_token: tuple | None
    templates: int
    bound_instances: int
    tasks_run: int
    levels_run: int
    primes: int
    bytes_received: int
    backend: str
    warnings: tuple[str, ...]


@dataclass(frozen=True)
class Shutdown:
    """Stop serving and exit (replied to before the worker exits)."""


@dataclass(frozen=True)
class OkReply:
    value: object = None


@dataclass(frozen=True)
class ResultsReply:
    """Task results of one :class:`ExecuteLevel`, in task order."""

    results: list


@dataclass(frozen=True)
class ErrorReply:
    """A request failed on a live worker; carries the typed exception."""

    error: BaseException
    kind: str = ""


#: All frame types, for protocol round-trip tests.
MESSAGE_TYPES = (
    Hello,
    HelloReply,
    Prime,
    InvalidateSnapshot,
    RegisterTemplate,
    BoundSpecs,
    ExecuteLevel,
    Stats,
    StatsReply,
    Shutdown,
    OkReply,
    ResultsReply,
    ErrorReply,
    ColumnarFrame,
)


def plan_key(physical: PhysicalPlan) -> str:
    """Content digest of a physical plan, used as its registry key.

    Computed once per template at registration and carried on every
    bound :class:`~repro.physical.executor.PreparedPlan`, so it only
    needs to be stable within one driver process.
    """
    return hashlib.sha1(pickle.dumps(physical)).hexdigest()[:16]


# -- the worker process --------------------------------------------------------


class _BoundPlan:
    """A template bound worker-side: compiled jobs plus spec lookup."""

    def __init__(
        self, physical: PhysicalPlan, binding: tuple, num_nodes: int
    ) -> None:
        bound = substitute_plan(physical, dict(binding)) if binding else physical
        self.compiled = compile_plan(bound)
        self._map: dict[tuple, object] = {}
        self._reduce: dict[str, object] = {}
        for spec in self.compiled.jobs:
            job = job_from_spec(spec, num_nodes)
            for task in job.map_tasks:
                tag = getattr(task.spec, "tag", None)
                self._map[(spec.name, tag, task.node)] = task.spec
            if job.reduce_spec is not None:
                self._reduce[spec.name] = job.reduce_spec

    def map_spec(self, job: str, tag, node: int):
        try:
            return self._map[(job, tag, node)]
        except KeyError:
            raise WorkerStateError(
                f"no map task ({job!r}, tag={tag}, node={node}) in bound plan"
            ) from None

    def reduce_spec(self, job: str):
        try:
            return self._reduce[job]
        except KeyError:
            raise WorkerStateError(f"job {job!r} has no reduce spec") from None


class _WorkerState:
    """Everything resident in one shard server process."""

    def __init__(
        self,
        shard: int,
        num_nodes: int,
        num_shards: int,
        backend: str,
        backend_workers: int | None,
    ) -> None:
        self.shard = shard
        self.num_nodes = num_nodes
        self.num_shards = num_shards
        self.backend_name = backend
        self.warnings: list[str] = []
        self.backend: ExecutionBackend = make_backend(
            backend, num_workers=backend_workers,
            on_fallback=self.warnings.append,
        )
        self.snapshot: StoreSnapshot | None = None
        #: columnar wire codec of this connection; None = pickle wire
        self.wire: WireCodec | None = None
        self.templates: dict[str, PhysicalPlan] = {}
        self.bound: dict[tuple, _BoundPlan] = {}
        self.tasks_run = 0
        self.levels_run = 0
        self.primes = 0
        self.bytes_received = 0

    # -- state transitions -------------------------------------------------

    @property
    def token(self) -> tuple | None:
        return None if self.snapshot is None else store_token(self.snapshot)

    def install_snapshot(self, snapshot: StoreSnapshot, wire: str = "pickle") -> tuple:
        self.snapshot = snapshot
        # Re-seed the wire codec: the driver does the same from the very
        # snapshot object it just sent, so both ends assign identical ids
        # to every resident term and the delta watermarks restart in sync.
        self.wire = WireCodec(snapshot) if wire == "columnar" else None
        self.primes += 1
        # Revalidate the local backend against the new snapshot token: a
        # process pool keyed to the old token rebuilds, anything else is
        # a no-op — the same mutation protocol as the in-proc deployment.
        self.backend.prime(
            TaskContext(num_nodes=self.num_nodes, store=snapshot)
        )
        return snapshot.token

    def register(self, key: str, physical: PhysicalPlan) -> bool:
        new = key not in self.templates
        self.templates[key] = physical
        if not new:
            # Re-registration replaces the plan; drop stale bindings.
            self.bound = {k: v for k, v in self.bound.items() if k[0] != key}
        return new

    def bound_for(self, key: str, binding: tuple) -> _BoundPlan:
        cached = self.bound.get((key, binding))
        if cached is None:
            physical = self.templates.get(key)
            if physical is None:
                raise TemplateNotRegistered(
                    f"shard {self.shard} holds no template {key!r}"
                )
            cached = _BoundPlan(physical, binding, self.num_nodes)
            self.bound[(key, binding)] = cached
            while len(self.bound) > MAX_BOUND_PLANS:
                # LRU eviction: a constant-varying workload must not
                # grow a long-lived server without bound.  Evicted
                # bindings rebind on demand from the resident template.
                self.bound.pop(next(iter(self.bound)))
        else:
            # Move-to-end marks the binding recently used.
            self.bound.pop((key, binding))
            self.bound[(key, binding)] = cached
        return cached

    # -- request handlers --------------------------------------------------

    def execute_level(self, msg: ExecuteLevel) -> ResultsReply:
        bound = self.bound_for(msg.key, msg.binding)
        if msg.phase == "map":
            if self.snapshot is None:
                raise WorkerStateError(
                    f"shard {self.shard} has no snapshot primed"
                )
            ctx = TaskContext(
                num_nodes=self.num_nodes,
                store=self.snapshot,
                hdfs=HDFS(num_nodes=self.num_nodes, files=dict(msg.inputs)),
            )
            invocations = [
                TaskInvocation(bound.map_spec(job, tag, node))
                for job, tag, node in msg.tasks
            ]
        elif msg.phase == "reduce":
            ctx = TaskContext(num_nodes=self.num_nodes, store=self.snapshot)
            invocations = [
                TaskInvocation(bound.reduce_spec(job), (partition, grouped))
                for job, partition, grouped in msg.tasks
            ]
        else:
            raise RpcProtocolError(f"unknown ExecuteLevel phase {msg.phase!r}")
        results = self.backend.run(invocations, ctx)
        self.tasks_run += len(invocations)
        self.levels_run += 1
        return ResultsReply(results=list(results))

    def stats(self) -> StatsReply:
        return StatsReply(
            shard=self.shard,
            pid=os.getpid(),
            snapshot_token=self.token,
            templates=len(self.templates),
            bound_instances=len(self.bound),
            tasks_run=self.tasks_run,
            levels_run=self.levels_run,
            primes=self.primes,
            bytes_received=self.bytes_received,
            backend=self.backend_name,
            warnings=tuple(self.warnings),
        )

    def close(self) -> None:
        try:
            self.backend.close()
        except Exception:
            pass


def _dispatch(state: _WorkerState, msg: object):
    """Map one decoded request frame to its reply (raises typed errors)."""
    if isinstance(msg, Hello):
        return HelloReply(
            shard=state.shard,
            num_nodes=state.num_nodes,
            num_shards=state.num_shards,
            pid=os.getpid(),
            snapshot_token=state.token,
        )
    if isinstance(msg, Prime):
        return OkReply(state.install_snapshot(msg.snapshot, msg.wire))
    if isinstance(msg, InvalidateSnapshot):
        state.snapshot = None
        return OkReply(None)
    if isinstance(msg, RegisterTemplate):
        return OkReply(state.register(msg.key, msg.physical))
    if isinstance(msg, BoundSpecs):
        state.bound_for(msg.key, msg.binding)
        return OkReply((msg.key, msg.binding))
    if isinstance(msg, ExecuteLevel):
        return state.execute_level(msg)
    if isinstance(msg, Stats):
        return state.stats()
    raise RpcProtocolError(f"unknown message type {type(msg).__name__!r}")


def _error_reply(exc: BaseException) -> bytes:
    """Pickle an error reply, degrading to a string-only error when the
    original exception itself does not pickle."""
    reply = ErrorReply(error=exc, kind=type(exc).__name__)
    try:
        return pickle.dumps(reply)
    except Exception:
        return pickle.dumps(
            ErrorReply(
                error=RpcError(f"{type(exc).__name__}: {exc}"),
                kind=type(exc).__name__,
            )
        )


def _worker_main(
    channel,
    shard: int,
    num_nodes: int,
    num_shards: int,
    backend: str,
    backend_workers: int | None,
    max_frame_bytes: int,
    authkey: bytes,
) -> None:
    """Entry point of a shard server process.

    Binds a localhost listener, reports the bound address back through
    *channel*, then serves its single router connection until Shutdown,
    EOF (driver died) or an unrecoverable frame error.
    """
    listener = Listener(("127.0.0.1", 0), authkey=bytes(authkey))
    try:
        channel.send(listener.address)
    finally:
        channel.close()
    state = _WorkerState(shard, num_nodes, num_shards, backend, backend_workers)
    conn = listener.accept()
    try:
        while True:
            try:
                data = conn.recv_bytes(max_frame_bytes)
            except EOFError:
                break
            except OSError:
                # Oversized frame (recv_bytes over maxlength) or a broken
                # pipe; the stream is unusable either way — report typed
                # if possible, then stop serving.
                try:
                    conn.send_bytes(
                        _error_reply(
                            FrameTooLarge(
                                f"request frame exceeded {max_frame_bytes} "
                                "bytes (or the connection broke mid-frame)"
                            )
                        )
                    )
                except Exception:
                    pass
                break
            state.bytes_received += len(data)
            try:
                msg = pickle.loads(data)
            except Exception as exc:
                conn.send_bytes(
                    _error_reply(RpcProtocolError(f"undecodable frame: {exc!r}"))
                )
                continue
            if isinstance(msg, Shutdown):
                try:
                    conn.send_bytes(pickle.dumps(OkReply("bye")))
                except Exception:
                    pass
                break
            try:
                if isinstance(msg, ColumnarFrame):
                    if state.wire is None:
                        raise WorkerStateError(
                            "columnar frame received but no columnar "
                            "Prime established a wire codec"
                        )
                    msg = state.wire.decode_frame(msg)
                reply = _dispatch(state, msg)
            except BaseException as exc:  # typed error replies, not death
                conn.send_bytes(_error_reply(exc))
                continue
            # Results go back columnar on a columnar connection; the
            # delta watermark advances only once the frame is written
            # (an unsent delta is simply re-shipped — merge_entries is
            # idempotent, so over-shipping is safe, gaps are not).
            commit = None
            if state.wire is not None and isinstance(reply, ResultsReply):
                try:
                    reply, commit = state.wire.encode_results(reply)
                except BaseException as exc:
                    conn.send_bytes(_error_reply(exc))
                    continue
            payload = pickle.dumps(reply)
            if len(payload) > max_frame_bytes:
                payload = _error_reply(
                    FrameTooLarge(
                        f"reply frame of {len(payload)} bytes exceeds the "
                        f"{max_frame_bytes}-byte cap"
                    )
                )
                commit = None
            conn.send_bytes(payload)
            if commit is not None:
                commit()
    finally:
        state.close()
        try:
            conn.close()
        finally:
            listener.close()


# -- the driver-side worker handle ---------------------------------------------


def _spawn_context():
    """Fork where available (workers receive their snapshot over the
    socket, so fork buys only startup speed), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class ShardWorkerClient:
    """Driver-side handle on one shard server process.

    Owns the process, the authenticated socket connection, and a lock
    serializing request/reply exchanges (the protocol is strictly
    request-response per connection; concurrent queries interleave at
    request granularity).
    """

    def __init__(
        self,
        shard: int,
        num_nodes: int,
        num_shards: int,
        backend: str = "serial",
        backend_workers: int | None = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        start_method: str | None = None,
        spawn_timeout: float = DEFAULT_SPAWN_TIMEOUT,
    ) -> None:
        self.shard = shard
        self.num_nodes = num_nodes
        self.num_shards = num_shards
        self.backend = backend
        self.backend_workers = backend_workers
        self.max_frame_bytes = max_frame_bytes
        self.start_method = start_method
        self.spawn_timeout = spawn_timeout
        self.process = None
        self.conn = None
        self.bytes_sent = 0
        #: driver end of the columnar wire codec; established by the
        #: first successful ``Prime(wire="columnar")`` on this connection
        self.codec: WireCodec | None = None
        #: snapshot token last primed onto this worker (driver-side view)
        self.primed_token: tuple | None = None
        #: worker warnings already relayed to the router's on_warning
        self.warnings_forwarded = 0
        self._lock = threading.RLock()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> HelloReply:
        """Spawn the server process, connect, and health-check it."""
        ctx = (
            multiprocessing.get_context(self.start_method)
            if self.start_method
            else _spawn_context()
        )
        authkey = os.urandom(16)
        parent, child = ctx.Pipe()
        process = ctx.Process(
            target=_worker_main,
            args=(
                child,
                self.shard,
                self.num_nodes,
                self.num_shards,
                self.backend,
                self.backend_workers,
                self.max_frame_bytes,
                authkey,
            ),
            name=f"repro-shard-{self.shard}",
        )
        try:
            process.start()
        except Exception as exc:
            raise WorkerSpawnError(
                f"could not start shard {self.shard} worker: {exc!r}"
            ) from exc
        child.close()
        try:
            if not parent.poll(self.spawn_timeout):
                raise WorkerSpawnError(
                    f"shard {self.shard} worker did not report an address "
                    f"within {self.spawn_timeout}s"
                )
            address = parent.recv()
            conn = Client(address, authkey=authkey)
        except WorkerSpawnError:
            self._reap(process)
            raise
        except Exception as exc:
            self._reap(process)
            raise WorkerSpawnError(
                f"could not connect to shard {self.shard} worker: {exc!r}"
            ) from exc
        finally:
            parent.close()
        self.process = process
        self.conn = conn
        return self.request(Hello())

    def alive(self) -> bool:
        return (
            self.process is not None
            and self.process.is_alive()
            and self.conn is not None
        )

    @staticmethod
    def _reap(process) -> None:
        try:
            if process.is_alive():
                process.terminate()
            process.join(timeout=5)
            if process.is_alive():
                process.kill()
                process.join(timeout=5)
        except Exception:
            pass

    def close(self, kill: bool = False) -> None:
        """Shut the worker down (gracefully unless *kill*); idempotent."""
        with self._lock:
            conn, self.conn = self.conn, None
            process, self.process = self.process, None
        if conn is not None:
            if not kill:
                try:
                    conn.send_bytes(pickle.dumps(Shutdown()))
                    if conn.poll(5):
                        conn.recv_bytes(self.max_frame_bytes)
                except Exception:
                    pass
            try:
                conn.close()
            except Exception:
                pass
        if process is not None:
            process.join(timeout=5)
            self._reap(process)

    # -- requests ----------------------------------------------------------

    def request(self, msg, on_bytes=None):
        """One request/reply exchange; raises the typed error a worker
        replied with, or a transport error when the worker is gone.

        On a columnar connection, ``ExecuteLevel`` requests and
        ``ResultsReply`` responses are transcoded here, under the
        connection lock — encode order equals send order, which the
        dictionary-delta watermark protocol relies on.
        """
        with self._lock:
            if self.conn is None:
                raise ConnectionError(
                    f"shard {self.shard} worker is not running"
                )
            send_msg, commit = msg, None
            if self.codec is not None and isinstance(msg, ExecuteLevel):
                send_msg, commit = self.codec.encode_execute_level(msg)
            payload = pickle.dumps(send_msg)
            if len(payload) > self.max_frame_bytes:
                raise FrameTooLarge(
                    f"{type(msg).__name__} frame of {len(payload)} bytes "
                    f"exceeds the {self.max_frame_bytes}-byte cap"
                )
            self.conn.send_bytes(payload)
            if commit is not None:
                commit()
            data = self.conn.recv_bytes(self.max_frame_bytes)
            reply = pickle.loads(data)
            if isinstance(reply, ColumnarFrame):
                if self.codec is None:
                    raise RpcProtocolError(
                        f"shard {self.shard} sent a columnar frame on a "
                        "pickle connection"
                    )
                reply = self.codec.decode_frame(reply)
            if isinstance(msg, Prime) and not isinstance(reply, ErrorReply):
                # The prime that seeds the worker's codec seeds ours,
                # from the same snapshot object — ids agree end to end.
                self.codec = (
                    WireCodec(msg.snapshot) if msg.wire == "columnar" else None
                )
        self.bytes_sent += len(payload)
        if on_bytes is not None:
            on_bytes(len(payload))
        if isinstance(reply, ErrorReply):
            raise reply.error
        return reply


# -- the driver-side router ----------------------------------------------------


@dataclass
class _RpcExecution:
    """Per-query execution context threaded through the level loop."""

    key: str
    binding: tuple[tuple[str, str], ...]
    bytes: list[int]

    def add(self, shard: int, n: int) -> None:
        self.bytes[shard] += n


class RpcShardRouter(ShardRouter):
    """A :class:`~repro.cluster.router.ShardRouter` whose shards are
    long-lived server processes reached over the RPC protocol.

    Level scheduling, the shuffle exchange and report merging are
    inherited unchanged — results are placed by submission position, so
    answers and merged reports are deterministic regardless of the order
    shard replies arrive in.  What changes is the dispatch hop: instead
    of running task specs through in-process backends, the router sends
    each shard an :class:`ExecuteLevel` frame naming the tasks of its
    nodes (the specs themselves live worker-side, bound from the
    registered template), plus the exchange rows.
    """

    transport = "rpc"

    def __init__(
        self,
        num_nodes: int,
        num_shards: int,
        params: CostParams = DEFAULT_PARAMS,
        worker_backend: str = "serial",
        worker_backend_workers: int | None = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        parallel_shards: bool = True,
        on_failure=None,
        on_warning=None,
        start_method: str | None = None,
        spawn_timeout: float = DEFAULT_SPAWN_TIMEOUT,
        wire_format: str = "pickle",
    ) -> None:
        if worker_backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown worker backend {worker_backend!r}; "
                f"expected one of {BACKEND_NAMES}"
            )
        if wire_format not in WIRE_FORMATS:
            raise ValueError(
                f"unknown wire format {wire_format!r}; "
                f"expected one of {WIRE_FORMATS}"
            )
        super().__init__(
            num_nodes,
            num_shards,
            params=params,
            backends=[SerialBackend() for _ in range(num_shards)],
            parallel_shards=parallel_shards,
        )
        self.worker_backend = worker_backend
        self.worker_backend_workers = worker_backend_workers
        self.wire_format = wire_format
        self.max_frame_bytes = max_frame_bytes
        self.start_method = start_method
        self.spawn_timeout = spawn_timeout
        self.on_failure = on_failure
        #: receives worker-side operational warnings (e.g. a shard
        #: server's process pool falling back to serial) so they surface
        #: through the service's stats exactly like in-process fallbacks
        self.on_warning = on_warning
        self.shard_failures = 0
        self._clients: list[ShardWorkerClient | None] = [None] * num_shards
        self._shard_locks = [threading.RLock() for _ in range(num_shards)]
        self._registry_lock = threading.Lock()
        self._templates: dict[str, PhysicalPlan] = {}
        self._last_snapshot = None

    # -- transport-specific report labels ----------------------------------

    def _shard_backend_name(self, shard: int) -> str:
        return f"rpc:{self.worker_backend}"

    def _bytes_shipped(self, exec_ctx) -> tuple[int, ...] | None:
        if isinstance(exec_ctx, _RpcExecution):
            return tuple(exec_ctx.bytes)
        return None

    @property
    def templates_registered(self) -> int:
        with self._registry_lock:
            return len(self._templates)

    # -- lifecycle ----------------------------------------------------------

    def ensure_workers(self, snapshot) -> None:
        """Spawn any missing shard server and (re-)prime stale ones.

        A worker is primed only when its resident snapshot token differs
        from its shard's current token — after a mutation, only the
        shards the batch actually touched receive a new snapshot.
        """
        for shard in range(self.num_shards):
            with self._shard_locks[shard]:
                client = self._clients[shard]
                if client is None:
                    # First spawn of this shard's server: not a failure.
                    try:
                        client = self._start_worker(shard)
                    except Exception as exc:
                        self._record_failure(shard, f"spawn failed: {exc!r}")
                        raise ShardUnavailable(
                            shard, f"spawn failed: {exc!r}"
                        ) from exc
                elif not client.alive():
                    # The worker died since we last spoke to it: recover
                    # (which records the failure and re-registers).
                    client = self._recover(shard, "worker process died")
                shard_snapshot = snapshot.shards[shard]
                if client.primed_token != shard_snapshot.token:
                    self._shard_call(
                        shard, Prime(shard_snapshot, wire=self.wire_format)
                    )
                    client.primed_token = shard_snapshot.token
                    self._forward_warnings(shard, client)
        self._last_snapshot = snapshot

    def _forward_warnings(self, shard: int, client: ShardWorkerClient) -> None:
        """Relay a worker's operational warnings (a prime may have
        demoted its process pool to serial) to ``on_warning`` — once
        each, mirroring the in-process fallback reporting."""
        if self.on_warning is None:
            return
        try:
            stats = client.request(Stats())
        except Exception:
            return  # the request path will surface real failures
        for warning in stats.warnings[client.warnings_forwarded:]:
            try:
                self.on_warning(f"shard {shard}: {warning}")
            except Exception:
                pass
        client.warnings_forwarded = len(stats.warnings)

    def _start_worker(self, shard: int) -> ShardWorkerClient:
        """Spawn shard *shard*'s server, handshake, re-register templates."""
        old = self._clients[shard]
        self._clients[shard] = None
        if old is not None:
            old.close(kill=True)
        client = ShardWorkerClient(
            shard=shard,
            num_nodes=self.num_nodes,
            num_shards=self.num_shards,
            backend=self.worker_backend,
            backend_workers=self.worker_backend_workers,
            max_frame_bytes=self.max_frame_bytes,
            start_method=self.start_method,
            spawn_timeout=self.spawn_timeout,
        )
        try:
            client.start()
            with self._registry_lock:
                templates = list(self._templates.items())
            for key, physical in templates:
                client.request(RegisterTemplate(key, physical))
        except Exception:
            client.close(kill=True)
            raise
        self._clients[shard] = client
        return client

    def worker_stats(self) -> list[StatsReply]:
        """One :class:`StatsReply` per live shard server."""
        return [
            self._shard_call(shard, Stats())
            for shard in range(self.num_shards)
        ]

    def invalidate(self, shard: int) -> None:
        """Drop shard *shard*'s resident snapshot (re-primed lazily)."""
        with self._shard_locks[shard]:
            self._shard_call(shard, InvalidateSnapshot())
            client = self._clients[shard]
            if client is not None:
                client.primed_token = None

    def close(self) -> None:
        for shard in range(self.num_shards):
            with self._shard_locks[shard]:
                client = self._clients[shard]
                self._clients[shard] = None
            if client is not None:
                client.close()
        super().close()

    # -- failure handling ---------------------------------------------------

    def _record_failure(self, shard: int, reason: str) -> None:
        self.shard_failures += 1
        if self.on_failure is not None:
            try:
                self.on_failure(shard, reason)
            except Exception:
                pass

    def _recover(self, shard: int, reason: str) -> ShardWorkerClient:
        """Respawn a dead worker: restart, re-prime, re-register.

        Records the failure that triggered the recovery; a failed
        respawn records a second failure and raises
        :class:`ShardUnavailable`.  Callers hold the shard lock.
        """
        self._record_failure(shard, reason)
        try:
            client = self._start_worker(shard)
            if self._last_snapshot is not None:
                shard_snapshot = self._last_snapshot.shards[shard]
                client.request(Prime(shard_snapshot, wire=self.wire_format))
                client.primed_token = shard_snapshot.token
                self._forward_warnings(shard, client)
            return client
        except Exception as exc:
            self._record_failure(shard, f"respawn failed: {exc!r}")
            self._clients[shard] = None
            raise ShardUnavailable(shard, f"respawn failed: {exc!r}") from exc

    def _shard_call(self, shard: int, msg, exec_ctx: _RpcExecution | None = None):
        """One request to one shard, with the one-respawn retry budget.

        A typed :class:`ErrorReply` from a live worker re-raises as-is
        (the request failed, not the worker).  A transport failure means
        the worker died: it is respawned — snapshot re-primed, templates
        re-registered — and the request retried exactly once; any
        further failure raises :class:`ShardUnavailable`.
        """
        on_bytes = (
            None if exec_ctx is None else (lambda n: exec_ctx.add(shard, n))
        )
        with self._shard_locks[shard]:
            client = self._clients[shard]
            respawned = False
            if client is None or not client.alive():
                client = self._recover(shard, "worker process is not running")
                respawned = True
            try:
                return client.request(msg, on_bytes)
            except _TRANSPORT_ERRORS as exc:
                if respawned:
                    self._record_failure(
                        shard, f"request failed after respawn: {exc!r}"
                    )
                    raise ShardUnavailable(
                        shard, f"request failed after respawn: {exc!r}"
                    ) from exc
                client = self._recover(shard, f"{type(exc).__name__}: {exc}")
                try:
                    return client.request(msg, on_bytes)
                except _TRANSPORT_ERRORS as retry_exc:
                    self._record_failure(
                        shard, f"request failed after respawn: {retry_exc!r}"
                    )
                    raise ShardUnavailable(
                        shard, f"request failed after respawn: {retry_exc!r}"
                    ) from retry_exc

    # -- template registry ---------------------------------------------------

    def register_prepared(self, prepared) -> bool:
        """Register a template's unbound physical plan with every shard.

        Stamps the prepared plan with its registry key, so every bound
        copy derived from it (:meth:`~repro.physical.executor
        .PreparedPlan.bind`) carries the provenance that lets queries
        cross the wire as constant vectors.  Dead workers are skipped —
        the respawn path re-registers the whole registry.
        """
        key = prepared.template_key
        if key is None:
            key = plan_key(prepared.physical)
            prepared.template_key = key
        with self._registry_lock:
            new = key not in self._templates
            self._templates[key] = prepared.physical
        self.register(prepared.compiled)
        if new:
            for shard in range(self.num_shards):
                with self._shard_locks[shard]:
                    client = self._clients[shard]
                    if client is None or not client.alive():
                        continue
                    try:
                        client.request(RegisterTemplate(key, prepared.physical))
                    except _TRANSPORT_ERRORS:
                        pass  # picked up by the respawn path
        return new

    # -- execution -----------------------------------------------------------

    def execute(self, compiled, snapshot, exec_ctx=None):
        """Reject bare compiled plans with a typed error.

        The RPC workers rebuild task specs from a registered *physical*
        plan, which a :class:`~repro.physical.job_compiler.CompiledPlan`
        alone does not carry — callers must go through
        :meth:`execute_prepared` (which sets up the execution context
        this method requires).
        """
        if not isinstance(exec_ctx, _RpcExecution):
            raise RpcError(
                "RpcShardRouter cannot execute a bare CompiledPlan: shard "
                "servers rebuild specs from the registered physical plan; "
                "use execute_prepared(prepared, snapshot)"
            )
        return super().execute(compiled, snapshot, exec_ctx)

    def execute_prepared(self, prepared, snapshot):
        """Run a prepared plan: bound constant vectors over the wire.

        A plan bound from a registered template ships as its template
        key plus binding; anything else (raw logical plans through the
        escape hatches, uncacheable queries) is registered ad hoc as its
        own template with an empty binding.
        """
        self.ensure_workers(snapshot)
        key = prepared.template_key
        binding = tuple(prepared.binding)
        with self._registry_lock:
            registered = key is not None and key in self._templates
        if not registered:
            key = plan_key(prepared.physical)
            binding = ()
            with self._registry_lock:
                self._templates.setdefault(key, prepared.physical)
        exec_ctx = _RpcExecution(
            key=key, binding=binding, bytes=[0] * self.num_shards
        )
        self._bind_all(exec_ctx)
        return self.execute(prepared.compiled, snapshot, exec_ctx)

    def _bind_shard(self, shard: int, exec_ctx: _RpcExecution) -> None:
        msg = BoundSpecs(exec_ctx.key, exec_ctx.binding)
        try:
            self._shard_call(shard, msg, exec_ctx)
        except TemplateNotRegistered:
            with self._registry_lock:
                physical = self._templates[exec_ctx.key]
            self._shard_call(
                shard, RegisterTemplate(exec_ctx.key, physical), exec_ctx
            )
            self._shard_call(shard, msg, exec_ctx)

    def _bind_all(self, exec_ctx: _RpcExecution) -> None:
        shards = range(self.num_shards)
        if self.num_shards > 1 and self.parallel_shards:
            pool = self._dispatch_pool()
            futures = [
                pool.submit(self._bind_shard, shard, exec_ctx)
                for shard in shards
            ]
            for future in futures:
                future.result()
            return
        for shard in shards:
            self._bind_shard(shard, exec_ctx)

    # -- the dispatch hop ----------------------------------------------------

    def _run_shards(self, per_shard, metas, ctxs, phase, level_index, exec_ctx):
        active = [s for s in range(self.num_shards) if per_shard[s]]

        def call(shard: int) -> list:
            if phase == "map":
                # Ship only the shuffled intermediates this shard's map
                # chains actually read — already sliced to its nodes in
                # the driver's per-shard HDFS view.
                names = sorted(
                    {
                        name
                        for inv in per_shard[shard]
                        for name in inv.spec.hdfs_inputs()
                    }
                )
                hdfs = ctxs[shard].hdfs
                inputs = {name: hdfs.read(name) for name in names}
                tasks = tuple(metas[shard])
            else:
                inputs = {}
                tasks = tuple(
                    (job, partition, inv.args[1])
                    for (job, partition), inv in zip(
                        metas[shard], per_shard[shard]
                    )
                )
            reply = self._shard_call(
                shard,
                ExecuteLevel(
                    key=exec_ctx.key,
                    binding=exec_ctx.binding,
                    level=level_index,
                    phase=phase,
                    tasks=tasks,
                    inputs=inputs,
                ),
                exec_ctx,
            )
            if len(reply.results) != len(per_shard[shard]):
                raise RpcProtocolError(
                    f"shard {shard} returned {len(reply.results)} results "
                    f"for {len(per_shard[shard])} tasks"
                )
            return reply.results

        if len(active) > 1 and self.parallel_shards:
            pool = self._dispatch_pool()
            futures = [(s, pool.submit(call, s)) for s in active]
            return [(s, f.result()) for s, f in futures]
        return [(s, call(s)) for s in active]


__all__ = [
    "BoundSpecs",
    "ColumnarFrame",
    "DEFAULT_MAX_FRAME_BYTES",
    "ErrorReply",
    "ExecuteLevel",
    "FrameTooLarge",
    "Hello",
    "HelloReply",
    "InvalidateSnapshot",
    "MESSAGE_TYPES",
    "OkReply",
    "Prime",
    "RegisterTemplate",
    "ResultsReply",
    "RpcError",
    "RpcProtocolError",
    "RpcShardRouter",
    "ShardUnavailable",
    "ShardWorkerClient",
    "Shutdown",
    "Stats",
    "StatsReply",
    "TemplateNotRegistered",
    "WorkerSpawnError",
    "WorkerStateError",
    "plan_key",
    "store_token",
]
