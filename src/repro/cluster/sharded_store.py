"""The sharded §5.1 store: placement-hashed triples across shard workers.

CliqueSquare's storage layout (``repro.partitioning``) places each
triple three times — by the hash of its subject, property and object
value — onto ``num_nodes`` logical nodes.  The sharded store keeps that
placement *bit-for-bit identical* and adds one level underneath: logical
nodes hash onto slots and a versioned :class:`~repro.cluster.slots
.SlotTable` maps slots to shards (the version-0 table reproduces the
historical ``n % num_shards`` layout exactly), and each shard holds an
independent :class:`~repro.partitioning.triple_partitioner
.PartitionedStore` containing exactly its nodes' partition files.
Because ownership is a table, not arithmetic, shards can be added and
removed at runtime: :meth:`ShardedStore.apply_rebalance` moves only the
affected slots' node file maps between shard-local stores and installs
the bumped table.

Because the node placement is unchanged, every co-location guarantee the
planner relies on (first-level joins are processed without
communication, §5.1) holds *within a shard*: a map task for node ``n``
runs on the shard owning ``n`` against purely shard-local data.  Only
the shuffle between a job's map and reduce phase — and job outputs
consumed by later jobs — cross shards, which is the router's exchange
step (:mod:`repro.cluster.router`).

Each shard also maintains shard-local catalog statistics computed from
its own replicas.  The §5.1 placement makes those *disjoint* — a
distinct subject lives on exactly one node of the subject replica, a
property on one node of the property replica, an object on one node of
the object replica — so :meth:`ShardedStore.aggregate_statistics` can
sum them into the exact global :class:`~repro.cost.cardinality
.CatalogStatistics` the cost model consumes, without any shard ever
seeing the whole dataset.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.cluster.slots import (
    DEFAULT_SLOTS,
    Move,
    SlotTable,
    initial_table,
    plan_resize,
)
from repro.cost.cardinality import CatalogStatistics, PropertyStats
from repro.partitioning.layout import PLACEMENTS, parse_file_name
from repro.partitioning.triple_partitioner import (
    PartitionedStore,
    StoreSnapshot,
    place,
)
from repro.rdf.graph import RDFGraph, Triple

#: Process-wide sharded-store identities (same role as the per-store uid:
#: snapshots of different sharded stores must never alias in pool caches).
_CLUSTER_IDS = itertools.count()


@dataclass(frozen=True)
class ShardedSnapshot:
    """Read-only view of a :class:`ShardedStore` at one version.

    ``shards[i]`` is shard *i*'s own :class:`StoreSnapshot`; each carries
    its own ``(store uid, version)`` token, so a mutation that touched
    only some shards invalidates only those shards' worker pools — the
    others keep serving from their unchanged snapshots.
    """

    num_nodes: int
    num_shards: int
    shards: tuple[StoreSnapshot, ...]
    token: tuple
    table: SlotTable

    def shard_of_node(self, node: int) -> int:
        return self.table.shard_of_node(node)

    def scan(
        self,
        node: int,
        placement: str,
        prop: str | None = None,
        type_object: str | None = None,
    ) -> list[Triple]:
        """Scan one node's partition on the shard that owns the node."""
        return self.shards[self.table.shard_of_node(node)].scan(
            node, placement, prop, type_object
        )

    def total_stored(self) -> int:
        return sum(s.total_stored() for s in self.shards)


class ShardedStore:
    """N shard workers, each holding one slice of the §5.1 layout.

    The public surface mirrors :class:`PartitionedStore` (``add``,
    ``add_all``, ``snapshot``, ``scan``, ``node_of``, ``total_stored``)
    so the query service can swap one in transparently; routing-specific
    extras (``shard_of_node``, per-shard statistics) feed the shard
    router and the explain/telemetry paths.
    """

    def __init__(
        self,
        num_nodes: int,
        num_shards: int,
        replicas: tuple[str, ...] = PLACEMENTS,
        slots: int = DEFAULT_SLOTS,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        if num_nodes < 1:
            raise ValueError(f"need at least one node, got {num_nodes}")
        if num_shards > num_nodes:
            # Ownership is node-granular (a shard owns whole nodes via
            # the slot table), so extra shards could never own a node:
            # they would only hold idle worker pools and skew
            # worker-budget splitting.
            raise ValueError(
                f"cannot spread {num_nodes} nodes over {num_shards} shards; "
                "use at most one shard per node"
            )
        if tuple(replicas) != PLACEMENTS:
            # Shard-local statistics lean on the disjointness of all
            # three replicas; the replica-ablation path stays on the
            # single-store executor.
            raise ValueError(
                "a sharded store requires the full 3-way replication "
                f"scheme {PLACEMENTS}, got {tuple(replicas)}"
            )
        self.num_nodes = num_nodes
        self.num_shards = num_shards
        self.replicas = tuple(replicas)
        # The initial table reproduces the historical n % num_shards
        # layout exactly (slots >= num_nodes, see initial_table).
        self.table = initial_table(num_shards, num_nodes, slots)
        self.stores = [
            PartitionedStore(num_nodes=num_nodes) for _ in range(num_shards)
        ]
        self.version = 0
        self.uid = next(_CLUSTER_IDS)
        #: serializes mutation against shard-statistics computation, so
        #: a concurrent ``shard_statistics`` never iterates a shard's
        #: file map mid-mutation nor caches a stale result after an
        #: invalidation (the query service's RW lock already provides
        #: this for service-owned stores; a bare ShardedStore gets the
        #: same guarantee from this lock).
        self._lock = threading.Lock()
        self._stats_cache: list[CatalogStatistics | None] = [None] * num_shards

    # -- topology ----------------------------------------------------------

    def shard_of_node(self, node: int) -> int:
        """The shard owning logical node *node*."""
        return self.table.shard_of_node(node)

    @property
    def node_shards(self) -> tuple[int, ...]:
        """Shard owner per logical node (``node_shards[n]`` owns n)."""
        table = self.table
        return tuple(
            table.shard_of_node(n) for n in range(self.num_nodes)
        )

    def nodes_of_shard(self, shard: int) -> tuple[int, ...]:
        """The logical nodes shard *shard* owns."""
        return tuple(self.table.nodes_of_shard(shard, self.num_nodes))

    def node_of(self, value: str) -> int:
        """The node holding *value*'s co-location group (any placement)."""
        return place(value, self.num_nodes)

    def shard_of_value(self, value: str) -> int:
        """The shard holding *value*'s co-location group."""
        return self.shard_of_node(self.node_of(value))

    # -- loading -----------------------------------------------------------

    def add(self, triple: Triple) -> None:
        """Route each §5.1 replica of *triple* to its owning shard."""
        s, p, o = triple
        with self._lock:
            for placement, value in zip(PLACEMENTS, (s, p, o)):
                node = place(value, self.num_nodes)
                shard = self.table.shard_of_node(node)
                self.stores[shard].add_placement(placement, triple)
                self._stats_cache[shard] = None
            self.version += 1

    def add_all(self, triples: Iterable[Triple]) -> int:
        count = 0
        for triple in triples:
            self.add(triple)
            count += 1
        return count

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> ShardedSnapshot:
        """Per-shard snapshots plus a combined identity token.

        Per-shard snapshots are memoized by the underlying stores, so
        only shards actually touched by the last mutation batch pay the
        copy (and only their worker pools rebuild).
        """
        with self._lock:
            shards = tuple(store.snapshot() for store in self.stores)
            return ShardedSnapshot(
                num_nodes=self.num_nodes,
                num_shards=self.num_shards,
                shards=shards,
                token=(self.uid, tuple(s.token for s in shards)),
                table=self.table,
            )

    # -- rebalancing (slot moves) ------------------------------------------

    def nodes_of_slot(self, slot: int) -> tuple[int, ...]:
        """The logical nodes hashing onto *slot* (empty beyond the ring)."""
        return tuple(range(slot, self.num_nodes, self.table.slots))

    def plan_resize_to(self, target_shards: int) -> tuple[Move, ...]:
        """A minimal plan resizing the topology to *target_shards*."""
        if target_shards > self.num_nodes:
            raise ValueError(
                f"cannot spread {self.num_nodes} nodes over "
                f"{target_shards} shards; use at most one shard per node"
            )
        with self._lock:
            return plan_resize(self.table, target_shards)

    def apply_rebalance(
        self, moves: Sequence[Move], new_num_shards: int | None = None
    ) -> SlotTable:
        """Move the planned slots' node file maps and install the new table.

        Grows the shard-local store list before moving slots in and
        shrinks it after moving slots out; a shrink plan must have
        drained the removed shards (``plan_resize`` always does).  Only
        the source and destination shards' snapshots and statistics
        caches are invalidated — untouched shards keep their memoized
        snapshots, so their workers are never re-primed.
        """
        with self._lock:
            new_table = self.table.apply(moves, new_num_shards)
            new_count = new_table.num_shards
            while len(self.stores) < new_count:
                self.stores.append(PartitionedStore(num_nodes=self.num_nodes))
                self._stats_cache.append(None)
            slots = self.table.slots
            for slot, src, dst in moves:
                for node in range(slot, self.num_nodes, slots):
                    files = self.stores[src].evict_node(node)
                    self.stores[dst].install_node(node, files)
                self._stats_cache[src] = None
                self._stats_cache[dst] = None
            if new_count < len(self.stores):
                for shard in range(new_count, len(self.stores)):
                    leftover = self.stores[shard].total_stored()
                    if leftover:
                        raise ValueError(
                            f"removed shard {shard} still holds "
                            f"{leftover} triples: incomplete plan"
                        )
                del self.stores[new_count:]
                del self._stats_cache[new_count:]
            self.table = new_table
            self.num_shards = new_count
            self.version += 1
            return new_table

    # -- scanning ----------------------------------------------------------

    def scan(
        self,
        node: int,
        placement: str,
        prop: str | None = None,
        type_object: str | None = None,
    ) -> list[Triple]:
        """Triples of one node's partition (served by its owning shard)."""
        return self.stores[self.table.shard_of_node(node)].scan(
            node, placement, prop, type_object
        )

    def file_names(self, node: int) -> list[str]:
        return self.stores[self.table.shard_of_node(node)].file_names(node)

    # -- invariants / telemetry --------------------------------------------

    def total_stored(self) -> int:
        """Total stored triples across shards (3x the dataset)."""
        return sum(store.total_stored() for store in self.stores)

    def triples_per_shard(self) -> tuple[int, ...]:
        """Stored triples (all replicas) per shard."""
        return tuple(store.total_stored() for store in self.stores)

    def replica_triples(self, placement: str) -> set[Triple]:
        """The dataset as reconstructed from one replica, across shards."""
        out: set[Triple] = set()
        for store in self.stores:
            out.update(store.replica_triples(placement))
        return out

    # -- catalog statistics ------------------------------------------------

    def shard_statistics(self, shard: int) -> CatalogStatistics:
        """Shard-local catalog statistics, computed from local replicas.

        ``triple_count`` and ``per_property`` come from the shard's
        property replica, ``distinct_subjects`` from its subject replica
        and ``distinct_objects`` from its object replica — the three
        placement-disjoint views that make shard catalogs sum exactly to
        the global catalog.  Recomputed lazily per shard after a
        mutation touched it.
        """
        with self._lock:
            cached = self._stats_cache[shard]
            if cached is None:
                cached = _catalog_of(self.stores[shard])
                self._stats_cache[shard] = cached
            return cached

    def aggregate_statistics(self) -> CatalogStatistics:
        """The exact global catalog, aggregated from per-shard catalogs."""
        return CatalogStatistics.merge_disjoint(
            self.shard_statistics(shard) for shard in range(self.num_shards)
        )


def _catalog_of(store: PartitionedStore) -> CatalogStatistics:
    """Catalog statistics of one shard's local partition files."""
    subjects: set[str] = set()
    objects: set[str] = set()
    per_prop: dict[str, tuple[set[str], set[str], list[int]]] = {}
    for node_files in store.files:
        for name, triples in node_files.items():
            placement, prop, _type_object = parse_file_name(name)
            if placement == "s":
                for s, _, _ in triples:
                    subjects.add(s)
            elif placement == "o":
                for _, _, o in triples:
                    objects.add(o)
            else:
                entry = per_prop.get(prop)
                if entry is None:
                    entry = per_prop[prop] = (set(), set(), [0])
                prop_subjects, prop_objects, count = entry
                for s, _, o in triples:
                    prop_subjects.add(s)
                    prop_objects.add(o)
                count[0] += len(triples)
    stats = CatalogStatistics(
        triple_count=sum(entry[2][0] for entry in per_prop.values()),
        distinct_subjects=len(subjects),
        distinct_properties=len(per_prop),
        distinct_objects=len(objects),
    )
    for prop, (prop_subjects, prop_objects, count) in per_prop.items():
        stats.per_property[prop] = PropertyStats(
            count=count[0],
            distinct_subjects=len(prop_subjects),
            distinct_objects=len(prop_objects),
        )
    return stats


def shard_graph(
    graph: RDFGraph | Sequence[Triple],
    num_nodes: int,
    num_shards: int,
    slots: int = DEFAULT_SLOTS,
) -> ShardedStore:
    """Partition a graph across *num_shards* shard workers."""
    store = ShardedStore(
        num_nodes=num_nodes, num_shards=num_shards, slots=slots
    )
    store.add_all(graph)
    return store
