"""The shard router: coordinates one query's jobs across shard workers.

The router is the distribution layer between the compiled job DAG and
the per-shard execution backends:

* **map levels run shard-local.**  Every map task is pinned to a logical
  node, and each node is owned by exactly one shard, so the router
  groups a level's map tasks by owning shard and hands each shard its
  batch — the shard scans only its own :class:`~repro.partitioning
  .triple_partitioner.StoreSnapshot`.  How a shard physically runs its
  batch is that shard's :class:`~repro.mapreduce.backends
  .ExecutionBackend` (serial, thread, or a per-shard process pool keyed
  to the shard's snapshot token).
* **the shuffle is the cross-shard exchange.**  Map emissions are routed
  by the process-independent :func:`~repro.mapreduce.jobs.stable_hash`
  to reduce partitions; partition ``p`` lives on node ``p % num_nodes``,
  hence on that node's shard — rows whose key hashes to another shard's
  partition cross shards here, and only here.  Job outputs are likewise
  sliced per shard before the next level, so a shard's map shufflers
  read purely shard-local intermediates.
* **per-shard reports merge into one.**  Each shard accumulates its own
  :class:`~repro.mapreduce.counters.JobMetrics` slice (its nodes' map
  work, its partitions' reduce work); the router folds them through
  :meth:`~repro.mapreduce.counters.ExecutionReport.merge`, which
  combines phase times by max and work by sum — reproducing the
  single-store engine's report for the same plan.

Results are deterministic and backend/shard-count invariant: batches
return in submission order, shuffle grouping follows the global task
order, and node placement is identical to the unsharded store — so
``shards=1`` and ``shards=4`` produce byte-identical answers.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.locks import checked
from repro.obs.trace import record_remote, span, trace_ctx
from repro.cost.params import DEFAULT_PARAMS, CostParams
from repro.mapreduce.backends import (
    DEFAULT_RPC_PIPELINE,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    TaskInvocation,
    make_backend,
    split_workers,
)
from repro.mapreduce.counters import ExecutionReport, JobMetrics
from repro.mapreduce.engine import ClusterConfig
from repro.mapreduce.hdfs import HDFS, DistributedRelation
from repro.mapreduce.jobs import JobGraph, MapReduceJob, Row, TaskContext
from repro.physical.executor import (
    ExecutionResult,
    PreparedPlan,
    job_from_spec,
    job_output_attrs,
)
from repro.physical.job_compiler import CompiledPlan, JobSpec, compile_plan
from repro.physical.translate import translate
from repro.core.logical import LogicalPlan

from repro.cluster.sharded_store import ShardedSnapshot, ShardedStore
from repro.cluster.slots import Move, SlotTable, plan_skew


@dataclass(frozen=True)
class ShardRunSummary:
    """Per-shard accounting of one query execution."""

    #: map + reduce task invocations executed per shard
    tasks: tuple[int, ...]
    #: output rows landing on each shard's nodes (all jobs)
    rows: tuple[int, ...]
    #: request bytes shipped to each shard worker (RPC transport only;
    #: None when shards are called in-process)
    bytes_shipped: tuple[int, ...] | None = None
    #: request frames shipped to each shard worker (RPC transport only;
    #: under cross-query coalescing a frame may carry several queries'
    #: levels, so a query's frame count can undershoot its level count)
    frames_shipped: tuple[int, ...] | None = None


@dataclass(frozen=True)
class RebalanceReport:
    """What one slot-table rebalance did (see
    :meth:`ShardedPlanExecutor.rebalance`)."""

    #: slot-table version before / after (after = before + 1; a rolled
    #: back attempt never produces a report — it raises)
    old_epoch: int
    new_epoch: int
    #: shard count before / after
    old_shards: int
    new_shards: int
    #: the applied ``(slot, src, dst)`` plan
    moves: tuple[Move, ...]
    #: logical nodes whose data actually moved, ascending
    moved_nodes: tuple[int, ...]
    #: migration bytes shipped per shard (RPC transport only; the
    #: elasticity claim is that this stays well under a full re-prime)
    bytes_shipped: tuple[int, ...] | None
    #: wall-clock seconds for the whole migration
    duration_s: float

    @property
    def slots_moved(self) -> int:
        return len(self.moves)


class _ShardJobState:
    """Per-(job, level) accumulation, split by owning shard."""

    def __init__(
        self, job: MapReduceJob, num_nodes: int, num_shards: int, overhead: float
    ) -> None:
        self.job = job
        self.shard_metrics = [
            JobMetrics(name=job.name, overhead=overhead, map_only=job.map_only)
            for _ in range(num_shards)
        ]
        self.node_work: dict[int, float] = defaultdict(float)
        self.reduce_work: dict[int, float] = defaultdict(float)
        self.shuffle: dict[int, dict[int, list[Row]]] = defaultdict(
            lambda: defaultdict(list)
        )
        self.outputs_per_node: list[list[Row]] = [[] for _ in range(num_nodes)]


class ShardRouter:
    """Runs compiled job DAGs across shard workers with exchange steps.

    This is the **in-process** transport: shards are called by function
    call into per-shard execution backends.  The RPC transport
    (:class:`repro.cluster.rpc.RpcShardRouter`) subclasses it, keeping
    the level scheduling, exchange and report-merge accounting and
    replacing only the per-shard dispatch hop (:meth:`_run_shards`).
    """

    #: transport label recorded on execution reports
    transport = "inproc"

    def __init__(
        self,
        num_nodes: int,
        num_shards: int,
        params: CostParams = DEFAULT_PARAMS,
        backends: Sequence[ExecutionBackend] | None = None,
        parallel_shards: bool = True,
    ) -> None:
        if backends is None:
            backends = [make_backend(None) for _ in range(num_shards)]
        if len(backends) != num_shards:
            raise ValueError(
                f"{num_shards} shards need {num_shards} backends, "
                f"got {len(backends)}"
            )
        self.num_nodes = num_nodes
        self.num_shards = num_shards
        self.params = params
        self.backends = list(backends)
        #: dispatch shard batches on driver threads so per-shard process
        #: pools overlap; pointless for the serial backend (GIL-bound)
        self.parallel_shards = parallel_shards and num_shards > 1
        self._lock = checked(threading.Lock(), "ShardRouter._lock")
        self._pool: ThreadPoolExecutor | None = None  # guarded-by: _lock
        self._registered: set[tuple] = set()  # guarded-by: _lock

    # -- template registration ---------------------------------------------

    @staticmethod
    def plan_structure(compiled: CompiledPlan) -> tuple:
        """The binding-independent structure key of a compiled plan.

        Bound instances of one template share this key: binding only
        rewrites selection constants inside scan patterns, never the job
        names, chain counts or dependency edges.
        """
        return tuple(
            (spec.name, len(spec.map_chains), spec.map_only, spec.depends)
            for spec in compiled.jobs
        )

    def register(self, compiled: CompiledPlan) -> bool:
        """Register a plan template's structure with every shard, once.

        Returns True the first time a structure is seen.  Registration
        is what makes the bindings-per-query flow explicit: the job DAG
        shape is validated and recorded once per template, and each
        query afterwards ships only its bound task specs (selection
        constants) plus shuffle payloads — the store snapshot itself
        reached each shard's pool when the pool was primed.
        """
        key = self.plan_structure(compiled)
        with self._lock:
            if key in self._registered:
                return False
            self._registered.add(key)
            return True

    @property
    def templates_registered(self) -> int:
        with self._lock:
            return len(self._registered)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def _dispatch_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._dispatch_width(),
                    thread_name_prefix="repro-shard",
                )
            return self._pool

    def _dispatch_width(self) -> int:
        """Driver-side dispatch pool size.  The RPC router widens this
        with its pipeline depth: coalescer followers park on a dispatch
        thread until the leader flushes, so the pool must hold one
        thread per concurrently in-flight shard call."""
        return max(4, 2 * self.num_shards)

    # -- execution -----------------------------------------------------------

    def execute(
        self,
        compiled: CompiledPlan,
        snapshot: ShardedSnapshot,
        exec_ctx: object | None = None,
    ) -> tuple[DistributedRelation, ExecutionReport, ShardRunSummary]:
        """Run a compiled plan over a sharded snapshot.

        Returns the final output relation, the merged execution report,
        and the per-shard run summary.  ``exec_ctx`` is an opaque
        per-execution context threaded through to :meth:`_run_shards`
        (the RPC transport uses it to carry the template identity and
        per-shard byte counters of one query).
        """
        if snapshot.num_shards != self.num_shards:
            raise ValueError(
                f"snapshot has {snapshot.num_shards} shards, "
                f"router routes {self.num_shards}"
            )
        self.register(compiled)
        num_nodes, num_shards = self.num_nodes, self.num_shards
        driver_hdfs = HDFS(num_nodes=num_nodes)
        shard_hdfs = [HDFS(num_nodes=num_nodes) for _ in range(num_shards)]
        ctxs = [
            TaskContext(
                num_nodes=num_nodes,
                store=snapshot.shards[shard],
                hdfs=shard_hdfs[shard],
            )
            for shard in range(num_shards)
        ]
        graph = JobGraph()
        spec_of: dict[str, JobSpec] = {}
        for spec in compiled.jobs:
            job = job_from_spec(spec, num_nodes)
            graph.add(job)
            spec_of[job.name] = spec
        reports = [
            ExecutionReport(backend=self._shard_backend_name(shard))
            for shard in range(num_shards)
        ]
        tasks = [0] * num_shards
        rows = [0] * num_shards
        table = snapshot.table
        for level_index, level in enumerate(graph.levels()):
            with span("level", index=level_index, jobs=len(level)):
                self._run_level(
                    level, spec_of, ctxs, reports, driver_hdfs, shard_hdfs,
                    tasks, rows, level_index, exec_ctx, table,
                )
        with span("merge", shards=num_shards):
            merged = reports[0]
            for other in reports[1:]:
                merged.merge(other)
            merged.shards = num_shards
            merged.transport = self.transport
            bytes_shipped = self._bytes_shipped(exec_ctx)
            frames_shipped = self._frames_shipped(exec_ctx)
            merged.shard_bytes = bytes_shipped
            merged.shard_frames = frames_shipped
            result = driver_hdfs.read("result")
        return result, merged, ShardRunSummary(
            tasks=tuple(tasks),
            rows=tuple(rows),
            bytes_shipped=bytes_shipped,
            frames_shipped=frames_shipped,
        )

    def execute_prepared(
        self, prepared: PreparedPlan, snapshot: ShardedSnapshot
    ) -> tuple[DistributedRelation, ExecutionReport, ShardRunSummary]:
        """Run a prepared plan (transport-specific routers may use its
        template provenance; the in-process router needs only the
        compiled jobs)."""
        return self.execute(prepared.compiled, snapshot)

    def _shard_backend_name(self, shard: int) -> str:
        """Backend label recorded on shard *shard*'s execution report."""
        return self.backends[shard].name

    def _bytes_shipped(self, exec_ctx: object | None) -> tuple[int, ...] | None:
        """Per-shard request bytes of one execution (None in-process)."""
        return None

    def _frames_shipped(self, exec_ctx: object | None) -> tuple[int, ...] | None:
        """Per-shard request frames of one execution (None in-process)."""
        return None

    # -- internals -----------------------------------------------------------

    def _run_shards(
        self,
        per_shard: list[list[TaskInvocation]],
        metas: list[list[tuple]],
        ctxs: list[TaskContext],
        phase: str,
        level_index: int,
        exec_ctx: object | None,
    ) -> list[tuple[int, list]]:
        """Run each shard's batch; results per shard in submission order.

        ``metas`` parallels the invocations with transport-level task
        descriptors — ``(job, tag, node)`` for map tasks, ``(job,
        partition)`` for reduce tasks.  The in-process transport runs
        the invocations directly and ignores them; the RPC transport
        ships the descriptors (plus exchange rows) instead of the specs.
        """
        # Sized by the level's own routing table, not self.num_shards: a
        # concurrent rebalance may have resized the fleet after this
        # level was grouped, and the stale-epoch protocol (not this
        # loop) is what reconciles that.
        active = [s for s in range(len(per_shard)) if per_shard[s]]
        # Captured on the query thread: dispatch-pool threads never saw
        # this query's contextvar, so per-shard spans attach explicitly.
        tctx = trace_ctx()

        def call(s: int) -> list:
            if tctx is None:
                return self.backends[s].run(per_shard[s], ctxs[s])
            t0 = time.perf_counter()
            out = self.backends[s].run(per_shard[s], ctxs[s])
            record_remote(
                tctx, "shard", t0, time.perf_counter(),
                shard=s, phase=phase, level=level_index,
                tasks=len(per_shard[s]),
            )
            return out

        if len(active) > 1 and self.parallel_shards:
            pool = self._dispatch_pool()
            futures = [(s, pool.submit(call, s)) for s in active]
            return [(s, f.result()) for s, f in futures]
        return [(s, call(s)) for s in active]

    def _run_level(
        self,
        level: list[MapReduceJob],
        spec_of: dict[str, JobSpec],
        ctxs: list[TaskContext],
        reports: list[ExecutionReport],
        driver_hdfs: HDFS,
        shard_hdfs: list[HDFS],
        tasks: list[int],
        rows: list[int],
        level_index: int,
        exec_ctx: object | None,
        table: SlotTable,
    ) -> None:
        params = self.params
        num_nodes, num_shards = self.num_nodes, self.num_shards
        shard_of_node = table.shard_of_node
        states = [
            _ShardJobState(job, num_nodes, num_shards, params.job_overhead)
            for job in level
        ]

        # Map phase: group the level's tasks by owning shard, preserving
        # the global (engine) task order for deterministic consumption.
        entries: list[tuple[_ShardJobState, object]] = []
        per_shard_inv: list[list[TaskInvocation]] = [[] for _ in range(num_shards)]
        per_shard_meta: list[list[tuple]] = [[] for _ in range(num_shards)]
        per_shard_pos: list[list[int]] = [[] for _ in range(num_shards)]
        for state in states:
            for task in state.job.map_tasks:
                shard = shard_of_node(task.node)
                per_shard_inv[shard].append(TaskInvocation(task.spec))
                per_shard_meta[shard].append(
                    (state.job.name, getattr(task.spec, "tag", None), task.node)
                )
                per_shard_pos[shard].append(len(entries))
                entries.append((state, task))
        results: list = [None] * len(entries)
        for shard, batch in self._run_shards(
            per_shard_inv, per_shard_meta, ctxs, "map", level_index, exec_ctx
        ):
            tasks[shard] += len(batch)
            for pos, result in zip(per_shard_pos[shard], batch):
                results[pos] = result
        for (state, task), (emits, direct, task_metrics) in zip(entries, results):
            node = task.node
            shard = shard_of_node(node)
            work = task_metrics.time(params)
            state.node_work[node] += work
            state.shard_metrics[shard].total_work += work
            num_reducers = max(state.job.num_reducers, 1)
            for partition, tag, row in emits:
                state.shuffle[partition % num_reducers][tag].append(row)
            state.outputs_per_node[node % num_nodes].extend(direct)
        for state in states:
            for shard in range(num_shards):
                state.shard_metrics[shard].map_time = max(
                    (
                        work
                        for node, work in state.node_work.items()
                        if shard_of_node(node) == shard
                    ),
                    default=0.0,
                )

        # Reduce phase: the exchange.  Partition p reduces on node
        # p % num_nodes, so its grouped rows ship to that node's shard —
        # this is the only point where tuples cross shard boundaries.
        rentries: list[tuple[_ShardJobState, int]] = []
        per_shard_rinv: list[list[TaskInvocation]] = [[] for _ in range(num_shards)]
        per_shard_rmeta: list[list[tuple]] = [[] for _ in range(num_shards)]
        per_shard_rpos: list[list[int]] = [[] for _ in range(num_shards)]
        for state in states:
            job = state.job
            if job.map_only:
                continue
            assert job.reduce_spec is not None
            for partition in range(job.num_reducers):
                grouped = {
                    tag: rows_
                    for tag, rows_ in state.shuffle.get(partition, {}).items()
                }
                shard = shard_of_node(partition % num_nodes)
                per_shard_rinv[shard].append(
                    TaskInvocation(job.reduce_spec, (partition, grouped))
                )
                per_shard_rmeta[shard].append((state.job.name, partition))
                per_shard_rpos[shard].append(len(rentries))
                rentries.append((state, partition))
        if rentries:
            rresults: list = [None] * len(rentries)
            for shard, batch in self._run_shards(
                per_shard_rinv, per_shard_rmeta, ctxs, "reduce", level_index,
                exec_ctx,
            ):
                tasks[shard] += len(batch)
                for pos, result in zip(per_shard_rpos[shard], batch):
                    rresults[pos] = result
            for (state, partition), (out_rows, task_metrics) in zip(
                rentries, rresults
            ):
                node = partition % num_nodes
                shard = shard_of_node(node)
                work = task_metrics.time(params)
                state.reduce_work[node] += work
                metrics = state.shard_metrics[shard]
                metrics.total_work += work
                metrics.tuples_shuffled += task_metrics.tuples_shuffled
                state.outputs_per_node[node].extend(out_rows)
            for state in states:
                if state.job.map_only:
                    continue
                for shard in range(num_shards):
                    state.shard_metrics[shard].reduce_time = max(
                        (
                            work
                            for node, work in state.reduce_work.items()
                            if shard_of_node(node) == shard
                        ),
                        default=0.0,
                    )

        # Close out the level: publish outputs (full relation driver-side,
        # shard-sliced for the next level's shard-local map shufflers),
        # charge overheads, extend per-shard reports.
        for state in states:
            spec = spec_of[state.job.name]
            attrs = job_output_attrs(spec)
            driver_hdfs.write(
                spec.output_name,
                DistributedRelation(
                    attrs=attrs, partitions=state.outputs_per_node
                ),
            )
            for shard in range(num_shards):
                shard_hdfs[shard].write(
                    spec.output_name,
                    DistributedRelation(
                        attrs=attrs,
                        partitions=[
                            part if shard_of_node(node) == shard else []
                            for node, part in enumerate(state.outputs_per_node)
                        ],
                    ),
                )
            for shard in range(num_shards):
                metrics = state.shard_metrics[shard]
                metrics.total_work += params.job_overhead
                metrics.output_tuples = sum(
                    len(state.outputs_per_node[node])
                    for node in range(num_nodes)
                    if shard_of_node(node) == shard
                )
                rows[shard] += metrics.output_tuples
                reports[shard].jobs.append(metrics)
                reports[shard].total_work += metrics.total_work
        for shard in range(num_shards):
            reports[shard].levels.append([state.job.name for state in states])
            reports[shard].response_time += max(
                (state.shard_metrics[shard].time for state in states),
                default=0.0,
            )


class ShardedPlanExecutor:
    """Drop-in :class:`~repro.physical.executor.PlanExecutor` over shards.

    Same prepare/execute surface, but the store is a
    :class:`ShardedStore` and execution routes through a shard router.
    ``transport`` selects the shard boundary:

    * ``"inproc"`` (default): shards are called in-process through
      per-shard execution backends — for ``"process"``, a worker pool
      of its own, with the machine-wide worker budget split across
      shards and each pool keyed to its shard's snapshot token (a
      mutation rebuild touches only mutated shards).
    * ``"rpc"``: shards are **long-lived server processes** behind
      :class:`repro.cluster.rpc.RpcShardRouter` — each holds its
      snapshot, registered templates and a local backend resident, and
      only bound constant vectors, level metadata and exchange rows
      cross the localhost socket per query.  A crashed worker is
      respawned and its request retried once; sustained failure raises
      a typed :class:`~repro.cluster.rpc.ShardUnavailable` (reported
      through ``on_shard_failure``).  ``wire_format`` selects the row
      encoding of those exchanges: ``"columnar"`` (default) packs rows
      as dictionary-encoded id buffers (:mod:`repro.columnar.wire`),
      ``"pickle"`` keeps the original tuple-list frames.
    """

    def __init__(
        self,
        store: ShardedStore,
        cluster: ClusterConfig | None = None,
        params: CostParams = DEFAULT_PARAMS,
        backend: ExecutionBackend | str | None = None,
        backend_workers: int | None = None,
        on_fallback: Callable[[str], None] | None = None,
        transport: str = "inproc",
        on_shard_failure: Callable[[int, str], None] | None = None,
        max_frame_bytes: int | None = None,
        wire_format: str = "columnar",
        rpc_pipeline: int = DEFAULT_RPC_PIPELINE,
        coalesce_window_ms: float = 0.0,
        coalesce_max_batch: int = 1,
    ) -> None:
        self.store = store
        self.cluster = cluster or ClusterConfig(num_nodes=store.num_nodes)
        if self.cluster.num_nodes != store.num_nodes:
            raise ValueError(
                f"cluster has {self.cluster.num_nodes} nodes but the "
                f"store places onto {store.num_nodes}"
            )
        self.params = params
        if transport not in ("inproc", "rpc"):
            raise ValueError(
                f"unknown shard transport {transport!r}; "
                "expected 'inproc' or 'rpc'"
            )
        self.transport = transport
        # Kept for topology changes: an in-process rebalance rebuilds
        # the router (and per-shard backends) from the same spec.
        self._backend_spec = backend
        self._backend_workers = backend_workers
        self._on_fallback = on_fallback
        self.backends: list[ExecutionBackend] = []
        if transport == "rpc":
            from repro.cluster.rpc import RpcShardRouter

            if isinstance(backend, ExecutionBackend):
                raise ValueError(
                    "the rpc transport needs a backend *name* (the backend "
                    "lives inside each shard server process), not an instance"
                )
            workers = split_workers(
                backend_workers, store.num_shards, backend or "serial"
            )
            extra = {} if max_frame_bytes is None else {
                "max_frame_bytes": max_frame_bytes
            }
            self.router: ShardRouter = RpcShardRouter(
                num_nodes=store.num_nodes,
                num_shards=store.num_shards,
                params=params,
                worker_backend=backend or "serial",
                worker_backend_workers=workers,
                on_failure=on_shard_failure,
                on_warning=on_fallback,
                wire_format=wire_format,
                pipeline=rpc_pipeline,
                coalesce_window_ms=coalesce_window_ms,
                coalesce_max_batch=coalesce_max_batch,
                **extra,
            )
            return
        self._build_inproc_router()

    def _build_inproc_router(self) -> None:
        """(Re)build the in-process router + per-shard backends for the
        store's *current* shard count, from the saved backend spec."""
        store = self.store
        backend = self._backend_spec
        if isinstance(backend, ExecutionBackend):
            if store.num_shards > 1 and isinstance(backend, ProcessBackend):
                raise ValueError(
                    "a shared ProcessBackend cannot serve multiple shards "
                    "(its pool is keyed to one snapshot); pass "
                    "backend='process' to give each shard its own pool"
                )
            self.backends = [backend] * store.num_shards
            parallel = not isinstance(backend, SerialBackend)
        else:
            workers = split_workers(
                self._backend_workers, store.num_shards, backend or "serial"
            )
            on_fallback = self._on_fallback
            self.backends = [
                make_backend(
                    backend,
                    num_workers=workers,
                    on_fallback=(
                        None
                        if on_fallback is None
                        else (
                            lambda message, shard=shard: on_fallback(
                                f"shard {shard}: {message}"
                            )
                        )
                    ),
                )
                for shard in range(store.num_shards)
            ]
            parallel = backend not in (None, "serial")
        self.router = ShardRouter(
            num_nodes=store.num_nodes,
            num_shards=store.num_shards,
            params=self.params,
            backends=self.backends,
            parallel_shards=parallel,
        )

    # -- lifecycle ------------------------------------------------------------

    def prime(self) -> None:
        """Warm every shard against its current snapshot.

        In-process: only shards whose snapshot token changed since the
        last prime rebuild their pools; the rest keep their workers (and
        the store slice those workers inherited).  RPC: spawns any shard
        server not yet running (a health-checked handshake) and sends a
        ``Prime`` only to workers whose resident snapshot token is stale.
        """
        snapshot = self.store.snapshot()
        if self.transport == "rpc":
            self.router.ensure_workers(snapshot)  # type: ignore[attr-defined]
            return
        for shard, backend in enumerate(self.backends):
            backend.prime(
                TaskContext(
                    num_nodes=self.cluster.num_nodes,
                    store=snapshot.shards[shard],
                )
            )

    def close(self) -> None:
        self.router.close()
        for backend in self.backends:
            backend.close()

    def __enter__(self) -> "ShardedPlanExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- topology -------------------------------------------------------------

    def rebalance(
        self,
        target_shards: int | None = None,
        moves: Sequence[Move] | None = None,
    ) -> RebalanceReport:
        """Move slot ownership between shards — grow, shrink, or shed skew.

        Pass *target_shards* to resize (the minimal plan is computed
        with :func:`~repro.cluster.slots.plan_resize`), or an explicit
        *moves* plan (e.g. from :func:`~repro.cluster.slots.plan_skew`).
        Answers are invariant across the change: slot moves relocate
        whole nodes, never re-place data, so ``shards=4`` before and
        ``shards=5`` after produce byte-identical results.

        RPC transport: a live migration — only the moved slots' snapshot
        slices cross the wire (:class:`~repro.cluster.rpc.PrimeSlots`),
        the epoch flips via :class:`~repro.cluster.rpc.TableUpdate`, and
        a failure rolls the store back, leaving workers to reconcile
        lazily.  The caller must quiesce queries for the duration (the
        query service's store write lock does).  In-process: the store
        is rebalanced and the router + per-shard backends are rebuilt
        and re-primed for the new shard count.
        """
        store = self.store
        old_table = store.table
        if moves is None:
            if target_shards is None:
                raise ValueError(
                    "rebalance needs target_shards or an explicit moves plan"
                )
            moves = store.plan_resize_to(target_shards)
        else:
            moves = tuple(moves)
        new_count = (
            old_table.num_shards if target_shards is None else target_shards
        )
        start = time.perf_counter()
        if not moves and new_count == old_table.num_shards:
            return RebalanceReport(
                old_epoch=old_table.version,
                new_epoch=old_table.version,
                old_shards=old_table.num_shards,
                new_shards=old_table.num_shards,
                moves=(),
                moved_nodes=(),
                bytes_shipped=() if self.transport == "rpc" else None,
                duration_s=time.perf_counter() - start,
            )
        moved_nodes = tuple(
            sorted(
                {
                    node
                    for slot, _src, _dst in moves
                    for node in store.nodes_of_slot(slot)
                }
            )
        )
        if self.transport == "rpc":
            bytes_shipped = self.router.migrate(  # type: ignore[attr-defined]
                store, moves, new_count
            )
        else:
            store.apply_rebalance(moves, new_count)
            old_router, old_backends = self.router, self.backends
            shared = isinstance(self._backend_spec, ExecutionBackend)
            self._build_inproc_router()
            old_router.close()
            if not shared:
                for backend in old_backends:
                    backend.close()
            self.prime()
            bytes_shipped = None
        new_table = store.table
        return RebalanceReport(
            old_epoch=old_table.version,
            new_epoch=new_table.version,
            old_shards=old_table.num_shards,
            new_shards=new_table.num_shards,
            moves=tuple(moves),
            moved_nodes=moved_nodes,
            bytes_shipped=bytes_shipped,
            duration_s=time.perf_counter() - start,
        )

    def suggest_rebalance(
        self, load: dict[int, float] | None = None, max_moves: int = 1
    ) -> tuple[Move, ...]:
        """A small skew-shedding plan from observed per-shard load.

        *load* maps shard → any monotone load signal (the service feeds
        worker gauges' ``tasks_run``); defaults to stored triples per
        shard.  Returns ``()`` when the topology is already balanced.
        """
        if load is None:
            load = {
                shard: float(count)
                for shard, count in enumerate(self.store.triples_per_shard())
            }
        return plan_skew(self.store.table, load, max_moves=max_moves)

    # -- public API -----------------------------------------------------------

    def prepare(self, plan: LogicalPlan) -> PreparedPlan:
        """Translate and compile *plan* without running it.

        With ``REPRO_CHECK_PLANS=1``, the prepared plan is verified
        against the paper's structural invariants first.
        """
        physical = translate(plan, replicas=self.store.replicas)
        compiled = compile_plan(physical)
        from repro.analysis.plan_check import maybe_check

        maybe_check(plan, physical=physical, compiled=compiled)
        return PreparedPlan(plan=plan, physical=physical, compiled=compiled)

    def register_template(self, prepared: PreparedPlan) -> bool:
        """Register a prepared template's job structure on every shard.

        Called once per template by the query service; afterwards every
        binding of the template ships only its binding-substituted task
        specs (in-process) or its bound constant vector (RPC) to the
        shards.
        """
        if self.transport == "rpc":
            return self.router.register_prepared(prepared)  # type: ignore[attr-defined]
        return self.router.register(prepared.compiled)

    def execute(self, plan: LogicalPlan) -> ExecutionResult:
        return self.execute_prepared(self.prepare(plan))

    def execute_prepared(self, prepared: PreparedPlan) -> ExecutionResult:
        """Run an already-prepared plan across the shards."""
        relation, report, summary = self.router.execute_prepared(
            prepared, self.store.snapshot()
        )
        return ExecutionResult(
            attrs=prepared.compiled.final_attrs,
            rows=set(relation.all_rows()),
            report=report,
            plan=prepared.plan,
            physical=prepared.physical,
            compiled=prepared.compiled,
            shard_tasks=summary.tasks,
            shard_rows=summary.rows,
            shard_bytes=summary.bytes_shipped,
            shard_frames=summary.frames_shipped,
        )
