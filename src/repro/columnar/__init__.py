"""Dictionary-encoded columnar blocks.

The tuple engine materialises every intermediate row as a python tuple
of decoded term strings; this package gives the same rows a second,
compact currency: a :class:`~repro.columnar.block.ColumnBlock` holds a
relation as parallel arrays of integer term ids, dictionary-encoded
against :class:`repro.rdf.dictionary.Dictionary`.  Two consumers share
the representation:

* :mod:`repro.columnar.engine` evaluates the physical task specs
  (``ChainMapSpec`` / ``MapOnlySpec`` / ``StarReduceSpec``) entirely in
  id space — selection is id comparison, the star join hashes id
  columns, projection slices columns — decoding back to term tuples
  only at the spec boundary, so answers and counters stay bit-identical
  to the tuple kernels (this powers the ``columnar`` execution
  backend);
* :mod:`repro.columnar.wire` packs rows crossing the RPC boundary into
  id buffers plus a delta of dictionary entries the peer does not hold
  yet, replacing pickled tuple lists as the shard wire format.

numpy accelerates the selection kernels when importable; everything
falls back to ``array('q')`` so a stdlib-only install keeps working
(set ``REPRO_COLUMNAR_FORCE_FALLBACK=1`` to force the stdlib path).
"""

from repro.columnar.block import (
    HAVE_NUMPY,
    ColumnBlock,
    columnar_available,
    to_blocks,
    to_rows,
)

__all__ = [
    "HAVE_NUMPY",
    "ColumnBlock",
    "columnar_available",
    "to_blocks",
    "to_rows",
]
