"""Columnar evaluation of the physical task specs.

Mirrors :mod:`repro.physical.executor`'s ``eval_chain`` and the three
spec ``run`` methods line for line, but every intermediate relation is
a :class:`ColumnBlock` and every comparison happens on term ids.  Rows
decode back to term tuples only at the spec boundary (shuffle emits,
direct outputs, reduce outputs), so the engine, the shuffle exchange
and report merging see exactly what the tuple kernels produce.

Counter parity is structural: every counter the tuple kernels charge is
a (multi)set cardinality — scanned triples, selected rows, join input
and output sizes, distinct projection keys — all of which are preserved
by dictionary encoding, so charging them from block lengths yields
field-wise identical :class:`TaskMetrics`.
"""

from __future__ import annotations

import threading

from repro.columnar.block import ColumnBlock, make_column
from repro.columnar.kernels import (
    HashMemo,
    project_block,
    select_bind,
    shuffle_partitions,
    star_join_blocks,
)
from repro.mapreduce.counters import TaskMetrics
from repro.mapreduce.jobs import TaskContext
from repro.physical.executor import ChainMapSpec, MapOnlySpec, StarReduceSpec
from repro.physical.operators import (
    Filter,
    MapJoin,
    MapScan,
    MapShuffler,
    PhysicalOperator,
    PhysProject,
)
from repro.rdf.dictionary import Dictionary
from repro.rdf.terms import is_variable

#: Cached scan encodings per store snapshot before the cache resets.
MAX_CACHED_SCANS = 512


class ColumnarState:
    """Per-store-snapshot state of the columnar backend.

    One dictionary (grown lazily as scans and seam conversions encode
    terms), the memoized ``stable_hash`` pieces keyed by id, and a
    bounded cache of encoded scan columns.  The lock guards dictionary
    growth and cache population — concurrent queries on one service
    share this state.  Reads (``decode``, memo hits) are lock-free:
    ids are append-only, so anything already assigned never moves.
    """

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.dictionary = Dictionary()
        self.memo = HashMemo(self.dictionary)
        self._scan_cache: dict[tuple, tuple] = {}

    def encode_rows(self, attrs, rows) -> ColumnBlock:
        """The ``to_blocks`` seam: encode term-tuple rows (thread-safe)."""
        with self.lock:
            return ColumnBlock.from_rows(attrs, rows, self.dictionary)

    def scan_columns(self, key: tuple, triples) -> tuple:
        """The (s, p, o) id columns of one scan, encoded once and cached."""
        columns = self._scan_cache.get(key)
        if columns is None:
            with self.lock:
                columns = self._scan_cache.get(key)
                if columns is None:
                    encode = self.dictionary.encode
                    s_ids, p_ids, o_ids = [], [], []
                    for s, p, o in triples:
                        s_ids.append(encode(s))
                        p_ids.append(encode(p))
                        o_ids.append(encode(o))
                    columns = (
                        make_column(s_ids),
                        make_column(p_ids),
                        make_column(o_ids),
                    )
                    if len(self._scan_cache) >= MAX_CACHED_SCANS:
                        self._scan_cache.clear()
                    self._scan_cache[key] = columns
        return columns


# -- chain evaluation ---------------------------------------------------------


def eval_chain_block(
    op: PhysicalOperator,
    node: int,
    ctx: TaskContext,
    metrics: TaskMetrics,
    state: ColumnarState,
) -> ColumnBlock:
    """Columnar twin of ``executor.eval_chain`` (same operators, same
    counter charges, blocks instead of relations)."""
    if isinstance(op, MapScan):
        triples = ctx.store.scan(node, op.placement, op.prop, op.type_object)
        metrics.tuples_read += len(triples)
        columns = state.scan_columns(
            (node, op.placement, op.prop, op.type_object), triples
        )
        # The pattern's constraints in id space: constants pin a column
        # to one id (or to nothing, when the dictionary has never seen
        # the constant — every term of this scan was just encoded, so
        # "unseen" means "matches no triple here"); repeated variables
        # require their columns to agree.
        const_checks: list[tuple[int, int | None]] = []
        var_positions: dict[str, list[int]] = {}
        for pos, term in enumerate((op.pattern.s, op.pattern.p, op.pattern.o)):
            if is_variable(term):
                var_positions.setdefault(term, []).append(pos)
            else:
                const_checks.append((pos, state.dictionary.lookup(term)))
        selected = select_bind(
            columns,
            const_checks,
            [tuple(var_positions[v]) for v in op.attrs],
        )
        return ColumnBlock(op.attrs, selected)
    if isinstance(op, Filter):
        before = metrics.tuples_read
        child = eval_chain_block(op.child, node, ctx, metrics, state)
        metrics.checks += metrics.tuples_read - before
        return child
    if isinstance(op, MapJoin):
        inputs = [
            eval_chain_block(c, node, ctx, metrics, state) for c in op.inputs
        ]
        output = star_join_blocks(inputs, on=op.on)
        metrics.join_tuples += sum(len(b) for b in inputs) + len(output)
        metrics.tuples_written += len(output)
        return output
    if isinstance(op, MapShuffler):
        relation = ctx.hdfs.read(op.source)
        rows = list(relation.partitions[node])
        metrics.tuples_read += len(rows)
        metrics.tuples_written += len(rows)
        return state.encode_rows(relation.attrs, rows)
    if isinstance(op, PhysProject):
        child = eval_chain_block(op.child, node, ctx, metrics, state)
        metrics.checks += len(child)
        return project_block(child, op.on)
    raise TypeError(f"not a map-side operator: {type(op)!r}")


# -- spec evaluation ----------------------------------------------------------


def run_chain_map(spec: ChainMapSpec, ctx: TaskContext, state: ColumnarState):
    metrics = TaskMetrics()
    block = eval_chain_block(spec.chain, spec.node, ctx, metrics, state)
    if not isinstance(spec.chain, (MapJoin, MapShuffler)):
        metrics.tuples_written += len(block)
    partitions = shuffle_partitions(
        block, spec.key_attrs, spec.num_reducers, state.memo
    )
    rows = block.to_rows(state.dictionary)
    emits = [
        (partition, spec.tag, row) for partition, row in zip(partitions, rows)
    ]
    return emits, [], metrics


def run_map_only(spec: MapOnlySpec, ctx: TaskContext, state: ColumnarState):
    metrics = TaskMetrics()
    block = eval_chain_block(spec.chain, spec.node, ctx, metrics, state)
    if spec.project is not None:
        metrics.checks += len(block)
        block = project_block(block, spec.project)
    metrics.tuples_written += len(block)
    return [], block.to_rows(state.dictionary), metrics


def run_star_reduce(
    spec: StarReduceSpec,
    ctx: TaskContext,
    partition: int,
    grouped: dict,
    state: ColumnarState,
):
    metrics = TaskMetrics()
    inputs = []
    for tag, attrs in enumerate(spec.child_attrs):
        rows = grouped.get(tag, [])
        metrics.tuples_shuffled += len(rows)
        metrics.tuples_read += len(rows)
        inputs.append(state.encode_rows(attrs, rows))
    if any(len(b) == 0 for b in inputs):
        out_rows: list[tuple] = []
    else:
        output = star_join_blocks(inputs, on=spec.on)
        metrics.join_tuples += sum(len(b) for b in inputs) + len(output)
        if spec.project is not None:
            metrics.checks += len(output)
            output = project_block(output, spec.project)
        out_rows = output.to_rows(state.dictionary)
    metrics.tuples_written += len(out_rows)
    return out_rows, metrics


def run_invocation(spec, args: tuple, ctx: TaskContext, state: ColumnarState):
    """Evaluate one task invocation, columnar where the spec is one of
    the three plan specs, falling back to the spec's own tuple ``run``
    for anything else (closure-style jobs, test doubles)."""
    if isinstance(spec, ChainMapSpec):
        return run_chain_map(spec, ctx, state)
    if isinstance(spec, MapOnlySpec):
        return run_map_only(spec, ctx, state)
    if isinstance(spec, StarReduceSpec):
        partition, grouped = args
        return run_star_reduce(spec, ctx, partition, grouped, state)
    return spec.run(ctx, *args)
