"""The :class:`ColumnBlock` representation and its conversion seams.

A block stores a relation column-wise: one parallel array of int64 term
ids per attribute.  Ids come from a :class:`~repro.rdf.dictionary
.Dictionary`, so equality of terms is equality of machine words and a
block round-trips losslessly through :func:`to_blocks` / :func:`to_rows`
for any terms the dictionary can hold (IRIs, literals, blank nodes —
any string).

Columns are numpy ``int64`` arrays when numpy is importable and the
fallback is not forced, stdlib ``array('q')`` otherwise.  Both support
``len``, iteration and indexing, so everything above the selection
kernels is representation-agnostic.
"""

from __future__ import annotations

import os
from array import array
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.rdf.dictionary import Dictionary

FORCE_FALLBACK = os.environ.get("REPRO_COLUMNAR_FORCE_FALLBACK", "") not in ("", "0")

if FORCE_FALLBACK:
    np = None
else:
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
        np = None

HAVE_NUMPY = np is not None


def columnar_available() -> bool:
    """True when the columnar backend should run in this environment:
    numpy is importable, or the stdlib fallback is explicitly forced."""
    return HAVE_NUMPY or FORCE_FALLBACK


def make_column(ids: Iterable[int]):
    """An id column from an iterable of ints (numpy or ``array('q')``)."""
    if HAVE_NUMPY:
        return np.fromiter(ids, dtype=np.int64)
    return array("q", ids)


def empty_column():
    if HAVE_NUMPY:
        return np.empty(0, dtype=np.int64)
    return array("q")


@dataclass
class ColumnBlock:
    """An ordered attribute schema plus one id column per attribute.

    The columnar analogue of :class:`~repro.relational.relation.Relation`:
    ``columns[i][r]`` is the id of row ``r``'s value for ``attrs[i]``.
    All columns have equal length.
    """

    attrs: tuple[str, ...]
    columns: tuple

    def __len__(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    def index_of(self, attr: str) -> int:
        try:
            return self.attrs.index(attr)
        except ValueError:
            raise KeyError(
                f"attribute {attr!r} not in schema {self.attrs}"
            ) from None

    def column(self, attr: str):
        return self.columns[self.index_of(attr)]

    def id_rows(self) -> list[tuple]:
        """Rows as tuples of ids (row-major view of the columns)."""
        if not self.columns:
            return []
        return list(zip(*self.columns))

    @classmethod
    def empty(cls, attrs: Sequence[str]) -> "ColumnBlock":
        return cls(tuple(attrs), tuple(empty_column() for _ in attrs))

    @classmethod
    def from_id_rows(cls, attrs: Sequence[str], rows: Sequence[tuple]) -> "ColumnBlock":
        """A block from row-major id tuples (inverse of :meth:`id_rows`)."""
        attrs = tuple(attrs)
        if not rows:
            return cls.empty(attrs)
        return cls(attrs, tuple(make_column(col) for col in zip(*rows)))

    # -- conversion seams -----------------------------------------------------

    @classmethod
    def from_rows(
        cls, attrs: Sequence[str], rows: Iterable[tuple], dictionary: Dictionary
    ) -> "ColumnBlock":
        """Encode term-tuple rows against *dictionary* (growing it)."""
        attrs = tuple(attrs)
        encode = dictionary.encode
        id_rows = [tuple(encode(term) for term in row) for row in rows]
        return cls.from_id_rows(attrs, id_rows)

    def to_rows(self, dictionary: Dictionary) -> list[tuple]:
        """Decode back to term-tuple rows, preserving row order."""
        if not self.columns:
            return []
        decode = dictionary.decode
        return [tuple(decode(i) for i in row) for row in zip(*self.columns)]


def to_blocks(relation, dictionary: Dictionary) -> ColumnBlock:
    """Encode a :class:`Relation` (or anything with ``attrs``/``rows``)."""
    return ColumnBlock.from_rows(relation.attrs, relation.rows, dictionary)


def to_rows(block: ColumnBlock, dictionary: Dictionary) -> list[tuple]:
    """Decode a block to term-tuple rows (module-level alias)."""
    return block.to_rows(dictionary)
