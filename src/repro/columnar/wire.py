"""The columnar shard wire format.

Rows crossing the RPC boundary (map inputs, reduce exchange rows,
result payloads) are packed as dictionary-encoded id buffers instead of
pickled tuple lists.  Each endpoint of a connection keeps two
dictionaries, both deterministically seeded from the shard's resident
:class:`StoreSnapshot` at prime time (node by node, file insertion
order, triple order — the snapshot is the same pickled object on both
ends, so the seeded ids agree by construction):

* ``send`` — grown by this endpoint as it encodes outgoing rows;
* ``recv`` — a replica of the peer's ``send``, maintained by replaying
  the dictionary delta each incoming frame carries.

A frame therefore ships only ids plus the delta of terms the peer's
replica doesn't already hold (snapshot-resident terms never cross the
wire, and any term crosses at most once per connection).  The sender
advances its delta watermark only after the frame is actually written,
so a frame lost to a transport failure merely re-ships its delta —
and :meth:`Dictionary.merge_entries` makes re-delivery idempotent.
A worker respawn re-primes the connection, resetting both ends.

Id buffers are little-ish endian *native* byte order — the wire only
ever spans processes on one machine (the workers are localhost
children), so no byte swapping is needed; each column is packed at the
narrowest of 1/2/4/8 bytes that holds its largest id.  Rows whose cells
are not all strings (never produced by the plan specs, but closure
tasks could) fall back to their pickled form via :class:`RawRows`.
"""

from __future__ import annotations

import threading
from array import array
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.mapreduce.hdfs import DistributedRelation
from repro.rdf.dictionary import Dictionary

#: Wire formats the shard transport speaks (ServiceConfig.wire_format).
WIRE_FORMATS = ("columnar", "pickle")

# The narrowest stdlib array typecode per byte width available on this
# platform (C type sizes vary; 1/2/4/8 all exist on every supported one).
_TYPECODE: dict[int, str] = {}
for _tc in "BHILQ":
    _TYPECODE.setdefault(array(_tc).itemsize, _tc)


def _width_for(max_value: int) -> int:
    for width in (1, 2, 4, 8):
        if width in _TYPECODE and max_value < 1 << (8 * width):
            return width
    raise OverflowError(f"id {max_value} exceeds 64 bits")


# -- wire dataclasses ---------------------------------------------------------


@dataclass(frozen=True)
class PackedRows:
    """A row set as parallel id columns: ``count`` rows, one buffer per
    column at ``widths[i]`` bytes per id, concatenated into ``data``."""

    count: int
    widths: tuple[int, ...]
    data: bytes


@dataclass(frozen=True)
class RawRows:
    """Fallback: rows that cannot be id-encoded cross pickled as-is."""

    rows: tuple


@dataclass(frozen=True)
class PackedRelation:
    """A :class:`DistributedRelation` with per-node packed partitions."""

    attrs: tuple[str, ...]
    partitions: tuple


@dataclass(frozen=True)
class PackedMapResult:
    """One map task's result: emits as a ``(partition, tag, *ids)``
    matrix, direct output rows, and the task metrics (pickled — tiny)."""

    emits: object
    direct: object
    metrics: object


@dataclass(frozen=True)
class PackedReduceResult:
    """One reduce task's result: output rows plus task metrics."""

    rows: object
    metrics: object


@dataclass(frozen=True)
class ColumnarFrame:
    """An encoded message plus the dictionary delta it depends on:
    ``delta_terms`` are the sender's dictionary entries from id
    ``delta_start`` on, which the receiver replays into its replica
    before unpacking ``payload``."""

    payload: object
    delta_start: int
    delta_terms: tuple[str, ...]


# -- packing ------------------------------------------------------------------


def _packable(rows: Sequence[tuple]) -> bool:
    """Rows id-encode only when rectangular with all-string cells (the
    plan specs guarantee this; closure-style tasks may not)."""
    if not rows:
        return True
    arity = len(rows[0])
    return all(
        len(row) == arity and all(type(term) is str for term in row)
        for row in rows
    )


def _pack_matrix(rows: Sequence[tuple]) -> PackedRows:
    """Pack row-major int tuples into column buffers (no empty check)."""
    count = len(rows)
    if count == 0:
        return PackedRows(0, (), b"")
    widths = []
    chunks = []
    for column in zip(*rows):
        width = _width_for(max(column))
        widths.append(width)
        chunks.append(array(_TYPECODE[width], column).tobytes())
    return PackedRows(count, tuple(widths), b"".join(chunks))


def _unpack_matrix(packed: PackedRows) -> list[tuple]:
    if packed.count == 0:
        return []
    columns = []
    offset = 0
    for width in packed.widths:
        end = offset + packed.count * width
        columns.append(array(_TYPECODE[width], packed.data[offset:end]))
        offset = end
    return list(zip(*columns))


def pack_rows(rows: Sequence[tuple], encode: Callable[[str], int]):
    """Term-tuple rows -> :class:`PackedRows` (or :class:`RawRows` when
    the rows are ragged or any cell is not a string)."""
    if not _packable(rows):
        return RawRows(tuple(rows))
    return _pack_matrix(
        [tuple(encode(term) for term in row) for row in rows]
    )


def unpack_rows(packed, decode: Callable[[int], str]) -> list[tuple]:
    if isinstance(packed, RawRows):
        return list(packed.rows)
    return [
        tuple(decode(i) for i in ids) for ids in _unpack_matrix(packed)
    ]


def pack_emits(emits: Sequence[tuple], encode: Callable[[str], int]):
    """Shuffle emits ``(partition, tag, row)`` -> one packed matrix of
    ``(partition, tag, *row_ids)`` rows."""
    if not all(
        type(partition) is int
        and partition >= 0
        and type(tag) is int
        and tag >= 0
        for partition, tag, _row in emits
    ) or not _packable([row for _p, _t, row in emits]):
        return RawRows(tuple(emits))
    return _pack_matrix(
        [
            (partition, tag) + tuple(encode(term) for term in row)
            for partition, tag, row in emits
        ]
    )


def unpack_emits(packed, decode: Callable[[int], str]) -> list[tuple]:
    if isinstance(packed, RawRows):
        return list(packed.rows)
    return [
        (ids[0], ids[1], tuple(decode(i) for i in ids[2:]))
        for ids in _unpack_matrix(packed)
    ]


# -- the codec ----------------------------------------------------------------


def _seed_dictionary(snapshot) -> Dictionary:
    """A dictionary over every term resident in *snapshot*, in the
    snapshot's own deterministic iteration order."""
    dictionary = Dictionary()
    encode = dictionary.encode
    for files in snapshot.files:
        for triples in files.values():
            for s, p, o in triples:
                encode(s)
                encode(p)
                encode(o)
    return dictionary


class WireCodec:
    """One endpoint of a columnar shard connection (see module docs).

    Concurrency contract (the multiplexed transport encodes from many
    threads over one connection): the codec's own state — both
    dictionaries and the delta watermark — is guarded by an internal
    lock, so concurrent ``encode_*`` calls assign ids safely.  What the
    codec *cannot* enforce is frame ordering: the delta watermark
    protocol requires that frames are **sent in the order their commit
    callbacks run**, so callers must hold their connection's send lock
    across encode + send and invoke ``commit`` before releasing it.
    A frame encoded after another thread grew the dictionary simply
    carries a window that also covers those not-yet-shipped ids —
    harmless over-shipping, since the receiver replays deltas in send
    order and :meth:`Dictionary.merge_entries` is idempotent.  Decoding
    likewise must happen in receive order (each endpoint has a single
    reader, which is exactly that).
    """

    def __init__(self, snapshot) -> None:
        self.send = _seed_dictionary(snapshot)
        self.recv = _seed_dictionary(snapshot)
        self._watermark = len(self.send)
        self._lock = threading.RLock()
        # Cumulative wire telemetry (guarded by _lock), surfaced via
        # stats() and the service's Prometheus exposition.
        self.frames_encoded = 0
        self.frames_decoded = 0
        self.terms_shipped = 0

    def stats(self) -> dict[str, int]:
        """Cumulative frame/delta counters for this endpoint."""
        with self._lock:
            return {
                "frames_encoded": self.frames_encoded,
                "frames_decoded": self.frames_decoded,
                "terms_shipped": self.terms_shipped,
            }

    # -- encoding (outgoing) --------------------------------------------------

    def _frame(self, payload) -> tuple[ColumnarFrame, Callable[[], None]]:
        start = self._watermark
        frame = ColumnarFrame(payload, start, self.send.entries_from(start))
        new_len = len(self.send)
        self.frames_encoded += 1
        self.terms_shipped += len(frame.delta_terms)

        def commit() -> None:
            with self._lock:
                # Commits run in send order; max() keeps a late commit
                # from rolling the watermark back should a caller ever
                # violate that.
                self._watermark = max(self._watermark, new_len)

        return frame, commit

    def _pack_level(self, msg):
        """An ``ExecuteLevel`` with its row payloads (map ``inputs`` or
        reduce exchange rows) packed; no frame wrapping."""
        encode = self.send.encode
        if msg.phase == "map":
            inputs = {
                name: PackedRelation(
                    attrs=relation.attrs,
                    partitions=tuple(
                        pack_rows(part, encode) for part in relation.partitions
                    ),
                )
                for name, relation in msg.inputs.items()
            }
            return replace(msg, inputs=inputs)
        return replace(
            msg,
            tasks=tuple(
                (
                    job,
                    partition,
                    {
                        tag: pack_rows(rows, encode)
                        for tag, rows in grouped.items()
                    },
                )
                for job, partition, grouped in msg.tasks
            ),
        )

    def _pack_results(self, reply):
        """A ``ResultsReply`` with packed results: map results are
        ``(emits, direct, metrics)`` triples, reduce results
        ``(rows, metrics)`` pairs; no frame wrapping."""
        encode = self.send.encode
        packed = []
        for result in reply.results:
            if len(result) == 3:
                emits, direct, metrics = result
                packed.append(
                    PackedMapResult(
                        emits=pack_emits(emits, encode),
                        direct=pack_rows(direct, encode),
                        metrics=metrics,
                    )
                )
            else:
                rows, metrics = result
                packed.append(
                    PackedReduceResult(rows=pack_rows(rows, encode), metrics=metrics)
                )
        return replace(reply, results=packed)

    def encode_execute_level(self, msg):
        """Pack an ``ExecuteLevel``; returns ``(frame, commit)`` where
        *commit* advances the delta watermark once the frame is sent."""
        with self._lock:
            return self._frame(self._pack_level(msg))

    def encode_execute_batch(self, msg):
        """Pack every level in an ``ExecuteBatch`` into one frame (one
        shared dictionary delta for the whole batch)."""
        with self._lock:
            items = tuple(
                (rid, self._pack_level(level)) for rid, level in msg.items
            )
            return self._frame(replace(msg, items=items))

    def encode_results(self, reply):
        """Pack a ``ResultsReply``; returns ``(frame, commit)``."""
        with self._lock:
            return self._frame(self._pack_results(reply))

    def encode_batch_results(self, reply):
        """Pack a ``BatchReply``'s per-request ``ResultsReply`` members
        (error members cross unpacked) into one frame."""
        with self._lock:
            replies = tuple(
                (
                    rid,
                    self._pack_results(sub)
                    if getattr(sub, "results", None) is not None
                    else sub,
                )
                for rid, sub in reply.replies
            )
            return self._frame(replace(reply, replies=replies))

    def encode_payload(self, msg):
        """Encode any frameable message — ``ExecuteLevel``,
        ``ExecuteBatch``, ``ResultsReply`` or ``BatchReply`` — picking
        the shape by its fields; returns ``(frame, commit)``."""
        if getattr(msg, "items", None) is not None:
            return self.encode_execute_batch(msg)
        if getattr(msg, "replies", None) is not None:
            return self.encode_batch_results(msg)
        if getattr(msg, "results", None) is not None:
            return self.encode_results(msg)
        return self.encode_execute_level(msg)

    # -- decoding (incoming) --------------------------------------------------

    def decode_frame(self, frame: ColumnarFrame):
        """Replay the frame's dictionary delta, then unpack its payload
        (an ``ExecuteLevel``, ``ExecuteBatch``, ``ResultsReply`` or
        ``BatchReply``)."""
        with self._lock:
            self.recv.merge_entries(frame.delta_start, frame.delta_terms)
            self.frames_decoded += 1
            return self._decode_payload(frame.payload, self.recv.decode)

    def _decode_payload(self, payload, decode):
        replies = getattr(payload, "replies", None)
        if replies is not None:  # BatchReply
            return replace(
                payload,
                replies=tuple(
                    (rid, self._decode_payload(sub, decode))
                    for rid, sub in replies
                ),
            )
        items = getattr(payload, "items", None)
        if items is not None:  # ExecuteBatch
            return replace(
                payload,
                items=tuple(
                    (rid, self._decode_payload(level, decode))
                    for rid, level in items
                ),
            )
        results = getattr(payload, "results", None)
        if results is not None:  # ResultsReply
            return replace(
                payload,
                results=[self._decode_result(r, decode) for r in results],
            )
        phase = getattr(payload, "phase", None)
        if phase is None:  # e.g. an ErrorReply inside a BatchReply
            return payload
        if phase == "map":
            inputs = {
                name: DistributedRelation(
                    attrs=packed.attrs,
                    partitions=[
                        unpack_rows(part, decode) for part in packed.partitions
                    ],
                )
                for name, packed in payload.inputs.items()
            }
            return replace(payload, inputs=inputs)
        return replace(
            payload,
            tasks=tuple(
                (
                    job,
                    partition,
                    {
                        tag: unpack_rows(packed, decode)
                        for tag, packed in grouped.items()
                    },
                )
                for job, partition, grouped in payload.tasks
            ),
        )

    @staticmethod
    def _decode_result(result, decode):
        if isinstance(result, PackedMapResult):
            return (
                unpack_emits(result.emits, decode),
                unpack_rows(result.direct, decode),
                result.metrics,
            )
        return unpack_rows(result.rows, decode), result.metrics
