"""Vectorized id-space kernels over :class:`ColumnBlock` columns.

Three operations, mirroring the tuple kernels they replace:

* **selection** — a scan's constant and repeated-variable constraints
  become id comparisons over the triple columns (a boolean mask with
  numpy, a fused python loop on the stdlib fallback);
* **star join** — the n-ary natural join of
  :func:`repro.relational.joins.star_join`, hashing id columns: group
  each input by its key-id tuples, intersect live keys, natural-join
  within a group enforcing equality on *all* shared attributes.  Output
  row *multisets* are identical to the tuple kernel; row order is not
  guaranteed (and, as the process backend already proves, nothing
  downstream depends on it — answers are sets and every counter is a
  multiset cardinality);
* **projection** — column slicing plus first-seen de-duplication on id
  tuples, matching ``Relation.project``.

Also here: the composable form of ``stable_hash`` — per term id the
pair ``(131^len(term) mod 2^31, poly(term))`` is memoized, so shuffle
routing hashes rows without decoding them, yet lands every row on
exactly the reducer the tuple engine picks.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.columnar.block import HAVE_NUMPY, ColumnBlock, make_column
from repro.rdf.dictionary import Dictionary

if HAVE_NUMPY:
    import numpy as np

_MASK = 0x7FFFFFFF
_MOD = 0x80000000


# -- selection ----------------------------------------------------------------


def select_bind(
    columns: Sequence,
    const_checks: Sequence[tuple[int, int | None]],
    var_positions: Sequence[tuple[int, ...]],
) -> ColumnBlock | tuple:
    """Bind a triple pattern against columnar triple data.

    *columns* are the (s, p, o) id columns of the scanned triples.
    *const_checks* lists ``(position, id)`` constraints — the column at
    *position* must equal *id* (``None`` means the constant was never
    seen by the dictionary, so nothing can match).  *var_positions*
    lists, per output variable in schema order, the positions holding
    it; a variable at several positions additionally requires those
    columns to agree (repeated-variable semantics of ``bind_triple``).

    Returns the selected output columns (order-preserving).
    """
    n = len(columns[0]) if columns else 0
    if any(ident is None for _, ident in const_checks):
        return tuple(make_column(()) for _ in var_positions)
    if HAVE_NUMPY:
        mask = None
        for pos, ident in const_checks:
            cond = columns[pos] == ident
            mask = cond if mask is None else (mask & cond)
        for positions in var_positions:
            for extra in positions[1:]:
                cond = columns[positions[0]] == columns[extra]
                mask = cond if mask is None else (mask & cond)
        if mask is None:
            return tuple(columns[positions[0]] for positions in var_positions)
        return tuple(columns[positions[0]][mask] for positions in var_positions)
    keep = []
    for r in range(n):
        ok = True
        for pos, ident in const_checks:
            if columns[pos][r] != ident:
                ok = False
                break
        if ok:
            for positions in var_positions:
                first = columns[positions[0]][r]
                for extra in positions[1:]:
                    if columns[extra][r] != first:
                        ok = False
                        break
                if not ok:
                    break
        if ok:
            keep.append(r)
    return tuple(
        make_column(columns[positions[0]][r] for r in keep)
        for positions in var_positions
    )


# -- star join ----------------------------------------------------------------


def _output_schema(inputs: Sequence[ColumnBlock]) -> tuple[str, ...]:
    attrs: list[str] = []
    for block in inputs:
        for a in block.attrs:
            if a not in attrs:
                attrs.append(a)
    return tuple(attrs)


def star_join_blocks(
    inputs: Sequence[ColumnBlock], on: Sequence[str]
) -> ColumnBlock:
    """Id-space n-ary star natural join (see module docstring).

    Semantically identical to ``relational.joins.star_join`` modulo row
    order: same output schema, same row multiset.
    """
    if not inputs:
        raise ValueError("star_join needs at least one input")
    if len(inputs) == 1:
        return inputs[0]
    key_attrs = tuple(on)
    for block in inputs:
        missing = set(key_attrs) - set(block.attrs)
        if missing:
            raise ValueError(
                f"input schema {block.attrs} lacks key attrs {missing}"
            )

    schema = _output_schema(inputs)
    slot = {a: i for i, a in enumerate(schema)}
    width = len(schema)

    # Hash every input's key-id columns; group row indices by key tuple.
    grouped: list[dict[tuple, list[int]]] = []
    for block in inputs:
        key_cols = [block.column(a) for a in key_attrs]
        groups: dict[tuple, list[int]] = defaultdict(list)
        for r, key in enumerate(zip(*key_cols)):
            groups[key].append(r)
        grouped.append(groups)

    live_keys = set(grouped[0].keys())
    for groups in grouped[1:]:
        live_keys &= set(groups.keys())

    # Per input: the output slot of each of its columns.
    slot_maps = [tuple(slot[a] for a in block.attrs) for block in inputs]

    out_rows: list[list] = []
    sentinel = object()
    for key in live_keys:
        partials: list[list] = [[sentinel] * width]
        for block, groups, slots in zip(inputs, grouped, slot_maps):
            next_partials: list[list] = []
            cols = block.columns
            for partial in partials:
                for r in groups[key]:
                    merged = list(partial)
                    ok = True
                    for col, s in zip(cols, slots):
                        value = col[r]
                        have = merged[s]
                        if have is sentinel:
                            merged[s] = value
                        elif have != value:
                            ok = False
                            break
                    if ok:
                        next_partials.append(merged)
            partials = next_partials
            if not partials:
                break
        out_rows.extend(partials)

    return ColumnBlock.from_id_rows(schema, [tuple(row) for row in out_rows])


# -- projection ---------------------------------------------------------------


def project_block(block: ColumnBlock, attrs: Sequence[str]) -> ColumnBlock:
    """Project onto *attrs* with first-seen de-duplication on id tuples
    (mirrors ``Relation.project``; output length is order-invariant)."""
    attrs = tuple(attrs)
    if not attrs:
        raise ValueError("cannot project a block onto an empty schema")
    cols = [block.column(a) for a in attrs]
    seen: set[tuple] = set()
    out: list[tuple] = []
    for key in zip(*cols):
        if key not in seen:
            seen.add(key)
            out.append(key)
    return ColumnBlock.from_id_rows(attrs, out)


# -- shuffle hashing ----------------------------------------------------------


class HashMemo:
    """Per-id memo of ``stable_hash``'s polynomial pieces.

    ``stable_hash`` folds each value's characters into a running state
    ``h`` via ``h = (h*131 + ord(ch)) & 0x7FFFFFFF`` and seals each
    value with ``h = (h*257 + 11) & 0x7FFFFFFF``.  Because masking to 31
    bits is reduction mod 2^31 (a ring homomorphism), folding a whole
    term *t* from state ``h`` equals ``(h * 131^len(t) + poly(t)) mod
    2^31`` — so per id we memoize ``(131^len(t) mod 2^31, poly(t))``
    and hash rows of ids without ever decoding them.
    """

    def __init__(self, dictionary: Dictionary) -> None:
        self._dictionary = dictionary
        self._memo: dict[int, tuple[int, int]] = {}

    def _pieces(self, ident: int) -> tuple[int, int]:
        pieces = self._memo.get(ident)
        if pieces is None:
            text = self._dictionary.decode(ident)
            poly = 0
            for ch in text:
                poly = (poly * 131 + ord(ch)) & _MASK
            pieces = (pow(131, len(text), _MOD), poly)
            self._memo[ident] = pieces
        return pieces

    def hash_id_row(self, ids: Sequence[int]) -> int:
        """``stable_hash`` of the decoded terms, computed in id space."""
        h = 17
        for ident in ids:
            mult, poly = self._pieces(ident)
            h = (h * mult + poly) & _MASK
            h = (h * 257 + 11) & _MASK
        return h


def shuffle_partitions(
    block: ColumnBlock,
    key_attrs: Sequence[str],
    num_reducers: int,
    memo: HashMemo,
) -> list[int]:
    """The reducer partition of every row, in row order — identical to
    ``stable_hash(key(row)) % num_reducers`` over the decoded rows."""
    key_cols = [block.column(a) for a in key_attrs]
    hash_row = memo.hash_id_row
    return [hash_row(ids) % num_reducers for ids in zip(*key_cols)]
