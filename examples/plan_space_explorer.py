"""Plan-space explorer: compare the eight CliqueSquare variants.

Runs every decomposition option of §4.3 on one query and reports, per
variant: plans produced, unique plans, heights, height-optimal plans and
optimization time — a one-query version of the paper's Figs. 16-19.

The default query is the paper's running example Q1 (Fig. 1); pass a
SPARQL BGP query string as the first CLI argument to explore your own:

    python examples/plan_space_explorer.py \\
        "SELECT ?x WHERE { ?x p1 ?y . ?y p2 ?z . ?z p3 ?w }"
"""

import sys
from collections import Counter

from repro import ALL_OPTIONS, cliquesquare, height, optimal_height, parse_query

PAPER_Q1 = """
SELECT ?a ?b WHERE {
    ?a p1 ?b . ?a p2 ?c . ?d p3 ?a . ?d p4 ?e . ?l p5 ?d . ?f p6 ?d .
    ?f p7 ?g . ?g p8 ?h . ?g p9 ?i . ?i p10 ?j . ?j p11 "C1" }
"""


def main() -> None:
    text = sys.argv[1] if len(sys.argv) > 1 else PAPER_Q1
    query = parse_query(text, name="explored")
    print(f"query ({len(query)} triple patterns): {query}")
    print(f"join variables: {', '.join(query.join_variables())}")

    reference = optimal_height(query, timeout_s=30)
    print(f"optimal plan height (HO reference): {reference}\n")

    header = f"{'option':>6}  {'plans':>8}  {'unique':>7}  {'HO':>6}  {'heights':<18}  {'time':>9}"
    print(header)
    print("-" * len(header))
    flattest = None
    for option in ALL_OPTIONS:
        result = cliquesquare(query, option, max_plans=20_000, timeout_s=10)
        heights = Counter(height(p) for p in result.plans)
        ho = heights.get(reference, 0)
        hist = " ".join(f"h{h}:{c}" for h, c in sorted(heights.items())) or "-"
        suffix = " (capped)" if result.truncated else ""
        print(
            f"{option.name:>6}  {result.plan_count:>8}  "
            f"{len(result.unique_plans()):>7}  {ho:>6}  {hist:<18}  "
            f"{result.elapsed_s * 1000:>7.1f}ms{suffix}"
        )
        if option.name == "MSC" and result.plans:
            flattest = min(result.plans, key=height)

    if flattest is not None:
        print(f"\nflattest MSC plan (height {height(flattest)}):")
        print(f"  {flattest}")


if __name__ == "__main__":
    main()
