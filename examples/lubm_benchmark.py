"""LUBM workload benchmark: the paper's §6.3-§6.4 evaluation in miniature.

Generates a scaled LUBM dataset, deploys the three systems of Fig. 21 —
CSQ (this paper), SHAPE-2f and H2RDF+ (simulated comparators) — and runs
the 14-query workload of Appendix A on each, printing a Fig. 20/21-style
table: job counts, simulated response times, and answer cardinalities.

Run:  python examples/lubm_benchmark.py [universities]
"""

import sys
import time

from repro import CSQ, CSQConfig, CostParams
from repro.systems.h2rdf import H2RDFPlus
from repro.systems.shape import ShapeSystem
from repro.workloads import lubm
from repro.workloads.lubm_queries import SELECTIVE, all_queries


def main() -> None:
    universities = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    print(f"generating LUBM ({universities} universities)...")
    graph = lubm.generate(lubm.LUBMConfig(universities=universities))
    print(f"  {len(graph):,} triples, {len(graph.properties)} properties\n")

    start = time.time()
    systems = [
        CSQ(graph, CSQConfig(params=CostParams(job_overhead=400.0))),
        ShapeSystem(graph),
        H2RDFPlus(graph),
    ]
    print(f"deployed CSQ / SHAPE-2f / H2RDF+ in {time.time() - start:.1f}s\n")

    header = (
        f"{'query':<10} {'class':<13} {'|Q|':>8}  "
        f"{'CSQ':>12} {'SHAPE-2f':>12} {'H2RDF+':>12}   jobs"
    )
    print(header)
    print("-" * len(header))
    totals = {s.name: 0.0 for s in systems}
    for query in all_queries():
        reports = {s.name: s.run(query) for s in systems}
        answers = {frozenset(r.answers) for r in reports.values()}
        assert len(answers) == 1, f"{query.name}: systems disagree!"
        for name, report in reports.items():
            totals[name] += report.response_time
        klass = "selective" if query.name in SELECTIVE else "non-selective"
        sig = "".join(
            reports[s.name].job_signature for s in systems
        )
        print(
            f"{query.name:<10} {klass:<13} "
            f"{len(reports['CSQ'].answers):>8,}  "
            f"{reports['CSQ'].response_time:>12,.0f} "
            f"{reports['SHAPE-2f'].response_time:>12,.0f} "
            f"{reports['H2RDF+'].response_time:>12,.0f}   {sig}"
        )

    print("-" * len(header))
    print(f"{'TOTAL':<10} {'':<13} {'':>8}  "
          + " ".join(f"{totals[s.name]:>12,.0f}" for s in systems))
    winner = min(totals, key=totals.get)
    print(f"\nworkload winner: {winner} "
          f"(paper: CSQ 44 min vs SHAPE 77 min vs H2RDF+ 23 h)")


if __name__ == "__main__":
    main()
