"""Partitioning demo: how §5.1's 3-way replication makes first-level
joins parallelizable without communication (PWOC).

Shows, for a handful of triples:

* where each of the three replicas of a triple lands;
* the per-node property files (including the rdf:type object split);
* that an s-o join (workers of a department vs the department's
  university) finds all its inputs co-located on one node — evaluated
  locally on every node, the union is the exact join result.

Run:  python examples/partitioning_demo.py
"""

from repro import RDFGraph, partition_graph
from repro.partitioning.layout import parse_file_name

TRIPLES = [
    ("<alice>", "ub:worksFor", "<sales>"),
    ("<bob>", "ub:worksFor", "<sales>"),
    ("<carol>", "ub:worksFor", "<rnd>"),
    ("<sales>", "ub:subOrganizationOf", "<acme>"),
    ("<rnd>", "ub:subOrganizationOf", "<acme>"),
    ("<alice>", "rdf:type", "ub:FullProfessor"),
    ("<bob>", "rdf:type", "ub:Student"),
]

NODES = 3


def main() -> None:
    graph = RDFGraph(TRIPLES)
    store = partition_graph(graph, NODES)

    print(f"{len(graph)} triples stored as {store.total_stored()} replicas "
          f"on {NODES} nodes\n")

    print("replica placement of one triple:")
    s, p, o = TRIPLES[0]
    for placement, value in zip("spo", (s, p, o)):
        print(f"  by {placement} ({value}) -> node {store.node_of(value)}")

    print("\nper-node partition files:")
    for node in range(NODES):
        print(f"  node {node}:")
        for name in store.file_names(node):
            placement, prop, type_obj = parse_file_name(name)
            count = len(store.files[node][name])
            extra = f" object={type_obj}" if type_obj else ""
            print(f"    [{placement}] {prop}{extra}: {count} triple(s)")

    # The s-o join: ?p ub:worksFor ?d  JOIN_d  ?d ub:subOrganizationOf ?u
    # worksFor is read from the *object* replica (d is its object);
    # subOrganizationOf from the *subject* replica (d is its subject).
    print("\nco-located evaluation of the s-o join on ?d:")
    total = set()
    for node in range(NODES):
        works = store.scan(node, "o", "ub:worksFor")
        suborg = store.scan(node, "s", "ub:subOrganizationOf")
        local = {
            (pw, d, u)
            for (pw, _, d) in works
            for (d2, _, u) in suborg
            if d == d2
        }
        print(f"  node {node}: {len(works)} worksFor x {len(suborg)} subOrg "
              f"-> {len(local)} local join rows")
        total |= local

    expected = {
        (pw, d, u)
        for (pw, _, d) in graph.match("?p", "ub:worksFor", "?d")
        for (_, _, u) in graph.match(d, "ub:subOrganizationOf", "?u")
    }
    assert total == expected
    print(f"\nunion of local results = global join ({len(total)} rows) ✓ PWOC")


if __name__ == "__main__":
    main()
