"""Quickstart: optimize a BGP query with CliqueSquare and execute it.

Walks the full pipeline on a small in-memory dataset:

1. parse a SPARQL BGP query;
2. run the CliqueSquare-MSC optimizer (Algorithm 1) and look at the
   flat, n-ary plans it builds;
3. partition the data with the §5.1 three-way replicated scheme;
4. execute the cost-selected plan on the simulated MapReduce cluster and
   check the answers against the reference evaluator.

Run:  python examples/quickstart.py
"""

from repro import (
    MSC,
    CardinalityEstimator,
    CatalogStatistics,
    PlanCoster,
    PlanExecutor,
    RDFGraph,
    cliquesquare,
    evaluate,
    height,
    parse_query,
    partition_graph,
    select_best_plan,
)


def build_dataset() -> RDFGraph:
    """A miniature organization: people working for / member of depts."""
    graph = RDFGraph()
    triples = [
        ("<alice>", "ub:worksFor", "<sales>"),
        ("<bob>", "ub:worksFor", "<sales>"),
        ("<carol>", "ub:worksFor", "<rnd>"),
        ("<dave>", "ub:memberOf", "<sales>"),
        ("<erin>", "ub:memberOf", "<rnd>"),
        ("<frank>", "ub:memberOf", "<rnd>"),
        ("<sales>", "ub:subOrganizationOf", "<acme>"),
        ("<rnd>", "ub:subOrganizationOf", "<acme>"),
        ("<alice>", "rdf:type", "ub:FullProfessor"),
        ("<carol>", "rdf:type", "ub:FullProfessor"),
    ]
    graph.add_all(triples)
    return graph


def main() -> None:
    graph = build_dataset()
    query = parse_query(
        """
        SELECT ?p ?s WHERE {
            ?p ub:worksFor ?d .
            ?s ub:memberOf ?d .
            ?d ub:subOrganizationOf <acme> .
            ?p rdf:type ub:FullProfessor }
        """,
        name="quickstart",
    )
    print(f"query: {query}")
    print(f"join variables: {', '.join(query.join_variables())}\n")

    # 1. Optimize: CliqueSquare-MSC builds flat plans from minimum
    #    simple covers of the query's variable graph.
    result = cliquesquare(query, MSC)
    print(f"CliqueSquare-MSC built {result.plan_count} plans:")
    for plan in result.unique_plans():
        print(f"  height {height(plan)}: {plan}")

    # 2. Select the cheapest plan under the §5.4 cost model.
    stats = CatalogStatistics.from_graph(graph)
    coster = PlanCoster(CardinalityEstimator(stats))
    best, cost = select_best_plan(result.unique_plans(), coster)
    print(f"\nselected plan (total work {cost:,.0f}): {best}")

    # 3. Partition the data three ways (subject / property / object hash)
    #    so every first-level join is co-located.
    store = partition_graph(graph, num_nodes=4)
    print(f"\npartitioned {len(graph)} triples -> {store.total_stored()} stored (3x)")

    # 4. Execute on the simulated MapReduce cluster.
    executor = PlanExecutor(store)
    execution = executor.execute(best)
    print(f"executed as {execution.num_jobs} MapReduce job(s) "
          f"[{execution.job_signature()}], simulated time "
          f"{execution.response_time:,.1f}")
    print(f"answers ({len(execution.rows)}):")
    for row in sorted(execution.rows):
        print("  ", dict(zip(execution.attrs, row)))

    # Cross-check against the §2 evaluation semantics.
    assert execution.rows == evaluate(query, graph)
    print("\nanswers verified against the reference evaluator ✓")


if __name__ == "__main__":
    main()
