"""Setuptools shim.

The environment's setuptools/pip combination lacks the ``wheel`` package
required for PEP 660 editable installs, so this repo keeps a classic
``setup.py`` and omits ``[build-system]`` from pyproject.toml; that makes
``pip install -e .`` take the legacy develop path, which works offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "CliqueSquare reproduction: flat plans for massively parallel "
        "RDF queries (ICDE 2015)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
